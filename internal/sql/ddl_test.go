package sql

import (
	"testing"

	"ocht/internal/vec"
)

func TestParseCreateTable(t *testing.T) {
	s, err := ParseStatement(`CREATE TABLE events (
		id BIGINT NOT NULL, kind TEXT, score DOUBLE, flag TINYINT,
		code SMALLINT NULL, n INT, label VARCHAR(30))`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := s.(*CreateTableStmt)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ct.Name != "events" || ct.IfNotExists {
		t.Fatalf("bad stmt: %+v", ct)
	}
	want := []ColDef{
		{"id", vec.I64, false}, {"kind", vec.Str, true}, {"score", vec.F64, true},
		{"flag", vec.I8, true}, {"code", vec.I16, true}, {"n", vec.I32, true},
		{"label", vec.Str, true},
	}
	if len(ct.Cols) != len(want) {
		t.Fatalf("%d cols, want %d", len(ct.Cols), len(want))
	}
	for i, w := range want {
		if ct.Cols[i] != w {
			t.Errorf("col %d = %+v, want %+v", i, ct.Cols[i], w)
		}
	}

	s, err = ParseStatement("CREATE TABLE IF NOT EXISTS t (a INT)")
	if err != nil {
		t.Fatal(err)
	}
	if !s.(*CreateTableStmt).IfNotExists {
		t.Fatal("IF NOT EXISTS not parsed")
	}
}

func TestParseInsert(t *testing.T) {
	s, err := ParseStatement(
		"INSERT INTO t (a, b, c) VALUES (1, 'x', 2.5), (-3, NULL, 0.0)")
	if err != nil {
		t.Fatal(err)
	}
	ins := s.(*InsertStmt)
	if ins.Table != "t" || len(ins.Columns) != 3 || len(ins.Rows) != 2 {
		t.Fatalf("bad stmt: %+v", ins)
	}
	if _, ok := ins.Rows[0][0].(*IntLit); !ok {
		t.Fatalf("row0 col0: %T", ins.Rows[0][0])
	}
	if _, ok := ins.Rows[1][0].(*NegOp); !ok {
		t.Fatalf("row1 col0: %T", ins.Rows[1][0])
	}
	if _, ok := ins.Rows[1][1].(*NullLit); !ok {
		t.Fatalf("row1 col1: %T", ins.Rows[1][1])
	}

	// Positional insert, no column list.
	s, err = ParseStatement("INSERT INTO t VALUES (1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*InsertStmt); got.Columns != nil || len(got.Rows) != 1 {
		t.Fatalf("bad stmt: %+v", got)
	}
}

func TestParseCopy(t *testing.T) {
	s, err := ParseStatement("COPY t FROM 'data/file.csv' WITH HEADER DELIMITER '|'")
	if err != nil {
		t.Fatal(err)
	}
	cp := s.(*CopyStmt)
	if cp.Table != "t" || cp.Path != "data/file.csv" || !cp.Header || cp.Delimiter != '|' {
		t.Fatalf("bad stmt: %+v", cp)
	}
	s, err = ParseStatement("COPY t FROM 'f.csv'")
	if err != nil {
		t.Fatal(err)
	}
	cp = s.(*CopyStmt)
	if cp.Header || cp.Delimiter != 0 {
		t.Fatalf("bad defaults: %+v", cp)
	}
}

func TestParseStatementSelect(t *testing.T) {
	s, err := ParseStatement("SELECT COUNT(*) FROM t WHERE a > 3")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*SelectStmt); !ok {
		t.Fatalf("got %T", s)
	}
}

func TestParseStatementErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE t",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a WIDGET)",
		"CREATE TABLE (a INT)",
		"INSERT INTO t (a, b) VALUES (1)",
		"INSERT INTO t VALUES (1), (1, 2)",
		"INSERT INTO t VALUES",
		"COPY t FROM missing_quotes.csv",
		"COPY t FROM 'f.csv' DELIMITER 'ab'",
		"CREATE TABLE t (a INT) garbage",
	}
	for _, q := range bad {
		if _, err := ParseStatement(q); err == nil {
			t.Errorf("ParseStatement(%q): expected error", q)
		}
	}
}
