package sql

import (
	"fmt"

	"ocht/internal/agg"
	"ocht/internal/exec"
	"ocht/internal/vec"
)

// DistPlan is the two halves of a distributed SELECT: the shard subquery
// (SQL text shipped to every shard, holding everything that can run
// below the exchange boundary — base-table filters, joins, and partial
// aggregation) and the coordinator's merge fragment built over an
// Exchange of the gathered shard rows. Aggregates merge through
// agg.Merge (via exec.MergeAgg), so the reducer is the same code path as
// the single-node parallel worker merge.
type DistPlan struct {
	// ShardSQL is sent verbatim to every shard.
	ShardSQL string
	// Aggregate reports whether the plan has a merge aggregation (false:
	// the shard rows pass through, the coordinator only re-sorts/limits).
	Aggregate bool
	// NKeys and Specs parameterize the coordinator's MergeAgg for
	// aggregate plans: the first NKeys exchange columns are group keys.
	NKeys int
	Specs []exec.MergeSpec
	// ShardLimit reports that ORDER BY + LIMIT were pushed into the shard
	// subquery (top-k: each shard returns its local top rows and the
	// coordinator re-sorts and re-limits the union).
	ShardLimit bool

	stmt      *SelectStmt
	keyRender map[string]int
	aggRender map[string]int
	keyNames  []string
}

// PlanDistributed splits a parsed SELECT into a shard subquery and a
// merge fragment. Every SELECT the single-node planner accepts splits:
// non-aggregate queries pass shard rows through (with top-k pushdown
// when a LIMIT is present), and aggregate queries push the grouped
// partial aggregation below the exchange, shipping AVG as SUM + COUNT.
func PlanDistributed(stmt *SelectStmt) (*DistPlan, error) {
	hasAgg := stmt.GroupBy != nil || stmt.Having != nil
	for _, it := range stmt.Items {
		if !it.Star && containsAgg(it.Expr) {
			hasAgg = true
		}
	}
	if !hasAgg {
		return planDistProjection(stmt)
	}
	return planDistAggregate(stmt)
}

// planDistProjection ships the whole non-aggregate query: the only
// coordinator work is re-sorting and re-limiting the gathered union.
func planDistProjection(stmt *SelectStmt) (*DistPlan, error) {
	shard := *stmt
	if stmt.Limit >= 0 {
		// Top-k pushdown: each shard pre-sorts and keeps its local top
		// rows; the union still contains the global top rows.
		shard.OrderBy = stmt.OrderBy
	} else {
		// A shard-local sort would be discarded by the coordinator's
		// re-sort; drop it.
		shard.OrderBy = nil
		shard.Limit = -1
	}
	return &DistPlan{
		ShardSQL:   FormatSelect(&shard),
		ShardLimit: stmt.Limit >= 0,
		stmt:       stmt,
	}, nil
}

// planDistAggregate pushes the grouped partial aggregation to shards.
// The shard subquery computes `SELECT <keys>, <partial aggs> ... GROUP BY
// <keys>` with HAVING/ORDER BY/LIMIT stripped (they need merged totals);
// the merge fragment folds the partials and re-applies them.
func planDistAggregate(stmt *SelectStmt) (*DistPlan, error) {
	d := &DistPlan{
		Aggregate: true,
		stmt:      stmt,
		keyRender: map[string]int{},
		aggRender: map[string]int{},
	}

	shard := &SelectStmt{
		Table:   stmt.Table,
		Joins:   stmt.Joins,
		Where:   stmt.Where,
		GroupBy: stmt.GroupBy,
		Limit:   -1,
	}
	for i, g := range stmt.GroupBy {
		shard.Items = append(shard.Items, SelectItem{Expr: g, Alias: fmt.Sprintf("__k%d", i)})
		name := fmt.Sprintf("key%d", i)
		if c, ok := g.(*ColRef); ok {
			name = c.Name
		}
		d.keyNames = append(d.keyNames, name)
		d.keyRender[render(g)] = i
	}
	d.NKeys = len(stmt.GroupBy)

	// Collect distinct aggregate calls across select items and HAVING —
	// the same dedup rule the single-node planner applies, so the merge
	// rewrite maps calls to columns identically.
	collect := func(n Node) error {
		return walk(n, func(n Node) error {
			f, ok := n.(*FuncCall)
			if !ok || !aggNames[f.Name] {
				return nil
			}
			if f.Distinct {
				return errf(f.nodePos(), "DISTINCT aggregates are not supported")
			}
			key := render(f)
			if _, seen := d.aggRender[key]; seen {
				return nil
			}
			ai := len(d.Specs)
			d.aggRender[key] = ai
			name := fmt.Sprintf("agg%d", ai)
			col := len(shard.Items) // next shard response column
			spec := exec.MergeSpec{Col: col, Cnt: -1, Name: name}
			alias := fmt.Sprintf("__a%d", len(shard.Items)-d.NKeys)
			switch f.Name {
			case "SUM":
				spec.Func = agg.Sum
				shard.Items = append(shard.Items, SelectItem{Expr: f, Alias: alias})
			case "MIN":
				spec.Func = agg.Min
				shard.Items = append(shard.Items, SelectItem{Expr: f, Alias: alias})
			case "MAX":
				spec.Func = agg.Max
				shard.Items = append(shard.Items, SelectItem{Expr: f, Alias: alias})
			case "COUNT":
				// Shard counts merge by summation whether COUNT(x) or
				// COUNT(*); the distinction already happened on the shard.
				if f.Star {
					spec.Func = agg.CountStar
				} else {
					spec.Func = agg.Count
				}
				shard.Items = append(shard.Items, SelectItem{Expr: f, Alias: alias})
			case "AVG":
				// AVG is not decomposable from shard averages; ship the
				// SUM and COUNT partials and finalize at the coordinator.
				spec.Func = exec.Avg
				spec.Cnt = col + 1
				sum := &FuncCall{base: f.base, Name: "SUM", Args: f.Args}
				cnt := &FuncCall{base: f.base, Name: "COUNT", Args: f.Args}
				shard.Items = append(shard.Items,
					SelectItem{Expr: sum, Alias: alias},
					SelectItem{Expr: cnt, Alias: fmt.Sprintf("__a%d", len(shard.Items)-d.NKeys+1)})
			}
			d.Specs = append(d.Specs, spec)
			return nil
		})
	}
	for _, it := range stmt.Items {
		if it.Star {
			return nil, errf(0, "SELECT * cannot be combined with aggregation")
		}
		if err := collect(it.Expr); err != nil {
			return nil, err
		}
	}
	if stmt.Having != nil {
		if err := collect(stmt.Having); err != nil {
			return nil, err
		}
	}
	d.ShardSQL = FormatSelect(shard)
	return d, nil
}

// Merge builds the coordinator fragment above the gathered shard rows:
// src is an exec.Exchange (or any operator) whose columns follow the
// shard subquery's select list. It returns the root operator plus the
// post-run ordering and limit, mirroring Plan's contract.
func (d *DistPlan) Merge(src exec.Op) (exec.Op, []exec.SortKey, int, error) {
	stmt := d.stmt
	if !d.Aggregate {
		order, err := (&planner{}).resolveOrder(stmt, src.Meta())
		if err != nil {
			return nil, nil, 0, err
		}
		return src, order, stmt.Limit, nil
	}

	var out exec.Op = exec.NewMergeAgg(src, d.NKeys, d.Specs)
	mm := out.Meta()
	// Rename merged key columns to the single-node planner's key names,
	// so compileRewritten's name-based key lookups resolve. The exchange
	// columns arrive as __k0..; the merge output must speak key0../col
	// names instead.
	renamed := make([]exec.Meta, len(mm))
	copy(renamed, mm)
	for i := 0; i < d.NKeys; i++ {
		renamed[i].Name = d.keyNames[i]
	}
	out = renameOp{out, renamed}

	if stmt.Having != nil {
		pred, err := compileRewritten(stmt.Having, renamed, d.keyRender, d.aggRender, d.keyNames)
		if err != nil {
			return nil, nil, 0, err
		}
		out = exec.NewFilter(out, pred)
	}

	var names []string
	var exprs []*exec.Expr
	for i, it := range stmt.Items {
		e, err := compileRewritten(it.Expr, renamed, d.keyRender, d.aggRender, d.keyNames)
		if err != nil {
			return nil, nil, 0, err
		}
		names = append(names, itemName(it, i))
		exprs = append(exprs, e)
	}
	out = exec.NewProject(out, names, exprs)

	order, err := (&planner{}).resolveOrder(stmt, out.Meta())
	if err != nil {
		return nil, nil, 0, err
	}
	return out, order, stmt.Limit, nil
}

// ShardTypes maps the declared result types of a shard subquery response
// back to vector types for the Exchange. It lives here so the dist
// package needs no knowledge of type-tag spelling.
func ShardTypes(tags []string) ([]vec.Type, error) {
	out := make([]vec.Type, len(tags))
	for i, s := range tags {
		switch s {
		case "BOOL":
			out[i] = vec.Bool
		case "I8":
			out[i] = vec.I8
		case "I16":
			out[i] = vec.I16
		case "I32":
			out[i] = vec.I32
		case "I64":
			out[i] = vec.I64
		case "I128":
			out[i] = vec.I128
		case "F64":
			out[i] = vec.F64
		case "STR":
			out[i] = vec.Str
		default:
			return nil, fmt.Errorf("sql: unknown shard column type %q", s)
		}
	}
	return out, nil
}

// TypeTag is ShardTypes' inverse, used by the shard-side endpoint.
func TypeTag(t vec.Type) string {
	switch t {
	case vec.Bool:
		return "BOOL"
	case vec.I8:
		return "I8"
	case vec.I16:
		return "I16"
	case vec.I32:
		return "I32"
	case vec.I64:
		return "I64"
	case vec.I128:
		return "I128"
	case vec.F64:
		return "F64"
	case vec.Str:
		return "STR"
	}
	return fmt.Sprintf("T%d", int(t))
}

// renameOp relabels an operator's output columns without copying data.
type renameOp struct {
	exec.Op
	meta []exec.Meta
}

func (r renameOp) Meta() []exec.Meta { return r.meta }

// JoinTables lists the table names a statement touches (base first).
func JoinTables(stmt *SelectStmt) []string {
	out := []string{stmt.Table}
	for _, j := range stmt.Joins {
		out = append(out, j.Table)
	}
	return out
}

// JoinKeyPairs syntactically extracts the equality column pairs of each
// JOIN clause as (left, right) name pairs, without schema resolution.
// The coordinator uses them to decide whether a join is co-partitioned
// (both sides join on their partition keys) or needs a broadcast side.
func JoinKeyPairs(stmt *SelectStmt) ([][][2]string, error) {
	out := make([][][2]string, len(stmt.Joins))
	for ji, j := range stmt.Joins {
		for _, t := range flattenAnd(j.On) {
			b, ok := t.(*BinOp)
			if !ok || b.Op != "=" {
				return nil, errf(t.nodePos(), "JOIN ON supports only equality conjunctions")
			}
			lc, lok := b.L.(*ColRef)
			rc, rok := b.R.(*ColRef)
			if !lok || !rok {
				return nil, errf(t.nodePos(), "JOIN ON supports only column = column")
			}
			out[ji] = append(out[ji], [2]string{lc.Name, rc.Name})
		}
	}
	return out, nil
}
