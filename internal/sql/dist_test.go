package sql

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// TestFormatRoundTrip pins the unparser: formatting a parsed statement
// and re-parsing it must yield a statement that formats identically and
// executes identically.
func TestFormatRoundTrip(t *testing.T) {
	cat := testCatalog()
	queries := []string{
		"SELECT region, qty * price AS revenue FROM sales WHERE qty > 5 AND region = 'north' LIMIT 100",
		"SELECT region, SUM(qty), COUNT(*), AVG(price) FROM sales WHERE note IS NOT NULL GROUP BY region HAVING SUM(qty) > 10 ORDER BY region",
		"SELECT region, MIN(note), MAX(note) FROM sales GROUP BY region",
		"SELECT category, SUM(qty * price) FROM sales JOIN products ON product_id = pid GROUP BY category ORDER BY 2 DESC",
		"SELECT region FROM sales WHERE region LIKE 'n%' OR qty IN (1, 2, 3) ORDER BY region DESC LIMIT 7",
		"SELECT region, CASE WHEN qty > 5 THEN 1 ELSE 0 END AS big FROM sales WHERE price BETWEEN 10 AND 500 LIMIT 20",
		"SELECT region, COUNT(note) FROM sales WHERE NOT (qty = 4) AND note IS NULL GROUP BY region",
		"SELECT SUM(CASE WHEN region = 'east' THEN price ELSE 0 END) FROM sales",
		"SELECT CAST(SUM(qty) AS FLOAT) / CAST(COUNT(*) AS FLOAT) AS r FROM sales GROUP BY region",
		"SELECT SUBSTRING(note, 1, 4) AS n4, COUNT(*) FROM sales WHERE note IS NOT NULL GROUP BY SUBSTRING(note, 1, 4)",
		"SELECT region, - price AS np FROM sales WHERE qty % 2 = 1 AND price <> 0 LIMIT 5",
	}
	for _, q := range queries {
		p1, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		f1 := FormatSelect(p1)
		p2, err := Parse(f1)
		if err != nil {
			t.Fatalf("re-parse of formatted %q: %v\nformatted: %s", q, err, f1)
		}
		if f2 := FormatSelect(p2); f1 != f2 {
			t.Errorf("format not a fixed point:\n 1: %s\n 2: %s", f1, f2)
		}
		a := mustRun(t, cat, q)
		b := mustRun(t, cat, f1)
		if !sameRows(a, b) {
			t.Errorf("formatted query diverges for %q\nformatted: %s", q, f1)
		}
	}
}

// shardCatalogs hash-partitions the sales fixture across k shards on
// product_id and broadcasts the products dimension to every shard —
// exactly the layout the coordinator's ingest router produces.
func shardCatalogs(k int) []*storage.Catalog {
	cats := make([]*storage.Catalog, k)
	salesCols := make([][]*storage.Column, k)
	for s := range cats {
		cats[s] = storage.NewCatalog()
		salesCols[s] = []*storage.Column{
			storage.NewColumn("region", vec.Str, false),
			storage.NewColumn("product_id", vec.I64, false),
			storage.NewColumn("qty", vec.I64, false),
			storage.NewColumn("price", vec.I64, false),
			storage.NewColumn("note", vec.Str, true),
		}
	}
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < 10_000; i++ {
		c := salesCols[(i%50)%k] // partition on product_id = i%50
		c[0].AppendString(regions[i%4])
		c[1].AppendInt(int64(i % 50))
		c[2].AppendInt(int64(i%10) + 1)
		c[3].AppendInt(int64(i%100) * 10)
		if i%9 == 0 {
			c[4].AppendNull()
		} else {
			c[4].AppendString(fmt.Sprintf("note %d here", i%5))
		}
	}
	for s := range cats {
		tb := storage.NewTable("sales", salesCols[s]...)
		tb.Seal()
		cats[s].Add(tb)
		pid := storage.NewColumn("pid", vec.I64, false)
		pname := storage.NewColumn("pname", vec.Str, false)
		cat2 := storage.NewColumn("category", vec.Str, false)
		for i := 0; i < 50; i++ {
			pid.AppendInt(int64(i))
			pname.AppendString(fmt.Sprintf("product-%02d", i))
			cat2.AppendString([]string{"tools", "toys", "food"}[i%3])
		}
		products := storage.NewTable("products", pid, pname, cat2)
		products.Seal()
		cats[s].Add(products)
	}
	return cats
}

// runDistributed executes a query through the full split: shard SQL on
// every shard catalog, gathered rows through an Exchange, and the merge
// fragment on the coordinator, with the post-run sort and limit.
func runDistributed(t *testing.T, q string, shards []*storage.Catalog, flags core.Flags) *exec.Result {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	d, err := PlanDistributed(stmt)
	if err != nil {
		t.Fatalf("split %q: %v", q, err)
	}
	var rows [][]exec.Value
	var names []string
	var types []vec.Type
	for _, cat := range shards {
		res, err := Run(d.ShardSQL, cat, exec.NewQCtx(flags))
		if err != nil {
			t.Fatalf("shard subquery %q: %v", d.ShardSQL, err)
		}
		if names == nil {
			names, types = res.Names, res.Types
		}
		rows = append(rows, res.Rows...)
	}
	root, order, limit, err := d.Merge(exec.NewExchange(names, types, rows))
	if err != nil {
		t.Fatalf("merge %q: %v", q, err)
	}
	res, err := exec.RunCtx(nil, exec.NewQCtx(flags), root)
	if err != nil {
		t.Fatalf("merge run %q: %v", q, err)
	}
	if len(order) > 0 {
		res.OrderBy(order...)
	}
	if limit >= 0 {
		res.Limit(limit)
	}
	return res
}

func sameRows(a, b *exec.Result) bool {
	return strings.Join(renderRows(a), "\n") == strings.Join(renderRows(b), "\n")
}

func renderRows(r *exec.Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestPlanDistributedEquivalence pins distributed-vs-single-node results
// for the aggregate shapes the coordinator serves, at 1, 2 and 4 shards,
// under vanilla and fully optimized flags.
func TestPlanDistributedEquivalence(t *testing.T) {
	whole := testCatalog()
	queries := []string{
		// Grouped aggregates with every merge rule.
		"SELECT region, SUM(price), COUNT(*), MIN(qty), MAX(qty) FROM sales GROUP BY region",
		"SELECT region, AVG(price) FROM sales GROUP BY region",
		"SELECT region, COUNT(note), MIN(note), MAX(note) FROM sales GROUP BY region",
		// Filters below the exchange.
		"SELECT region, SUM(qty) FROM sales WHERE price > 200 AND note IS NOT NULL GROUP BY region",
		// Nullable group key: NULL groups must merge across shards.
		"SELECT note, COUNT(*), SUM(price) FROM sales GROUP BY note",
		// Expression keys and aggregate arguments.
		"SELECT qty % 3, SUM(qty * price) FROM sales GROUP BY qty % 3",
		// HAVING and ORDER BY re-applied above the merge.
		"SELECT region, SUM(qty) AS tq FROM sales GROUP BY region HAVING SUM(qty) > 100 ORDER BY tq DESC",
		// Arithmetic over aggregates in the projection.
		"SELECT region, SUM(price) - MIN(price) AS spread, CAST(SUM(qty) AS FLOAT) / CAST(COUNT(*) AS FLOAT) AS aq FROM sales GROUP BY region",
		// Global aggregate (no GROUP BY).
		"SELECT SUM(price), COUNT(*), MIN(qty), MAX(note), AVG(qty) FROM sales",
		// Co-partitioned-style join below the exchange (products is
		// broadcast to every shard).
		"SELECT category, SUM(qty * price) AS rev FROM sales JOIN products ON product_id = pid GROUP BY category ORDER BY rev DESC",
		// Repeated aggregate dedup across items and HAVING.
		"SELECT region, SUM(qty), SUM(qty) + COUNT(*) FROM sales GROUP BY region HAVING SUM(qty) > 0",
		// Non-aggregate passthrough with top-k pushdown.
		"SELECT product_id, price FROM sales WHERE qty = 3 AND region = 'east' ORDER BY product_id LIMIT 40",
		// Non-aggregate without LIMIT: coordinator-side sort only.
		"SELECT region, qty FROM sales WHERE price = 990",
	}
	for _, flags := range []core.Flags{{}, core.All()} {
		for _, k := range []int{1, 2, 4} {
			shards := shardCatalogs(k)
			for _, q := range queries {
				want, err := Run(q, whole, exec.NewQCtx(flags))
				if err != nil {
					t.Fatalf("single-node %q: %v", q, err)
				}
				got := runDistributed(t, q, shards, flags)
				if !sameRows(want, got) {
					t.Errorf("shards=%d flags=%+v: distributed result differs for %q\n got: %v\nwant: %v",
						k, flags, q, renderRows(got), renderRows(want))
				}
			}
		}
	}
}
