package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// FormatNode renders an expression AST back to parsable SQL text. The
// distributed planner uses it to ship rewritten plan fragments (shard
// subqueries with pushed-down filters and partial aggregates) to shard
// processes over the ordinary SQL protocol. Operands are parenthesized
// defensively, so the re-parsed tree is structurally identical regardless
// of the original precedence.
func FormatNode(n Node) string {
	var b strings.Builder
	formatNode(&b, n)
	return b.String()
}

func formatNode(b *strings.Builder, n Node) {
	switch x := n.(type) {
	case *ColRef:
		if x.Table != "" {
			b.WriteString(x.Table)
			b.WriteByte('.')
		}
		b.WriteString(x.Name)
	case *IntLit:
		if x.V < 0 {
			// The lexer has no negative literals; negative values (from
			// programmatic ASTs) render as negations.
			fmt.Fprintf(b, "(- %d)", -x.V)
		} else {
			fmt.Fprintf(b, "%d", x.V)
		}
	case *FloatLit:
		if x.V < 0 {
			b.WriteString("(- " + formatFloat(-x.V) + ")")
		} else {
			b.WriteString(formatFloat(x.V))
		}
	case *StrLit:
		b.WriteString(quoteSQL(x.V))
	case *NullLit:
		b.WriteString("NULL")
	case *BinOp:
		b.WriteByte('(')
		formatNode(b, x.L)
		b.WriteByte(' ')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		formatNode(b, x.R)
		b.WriteByte(')')
	case *NotOp:
		b.WriteString("(NOT ")
		formatNode(b, x.L)
		b.WriteByte(')')
	case *NegOp:
		// The space after '-' keeps a nested negation from lexing as a
		// comment introducer.
		b.WriteString("(- ")
		formatNode(b, x.L)
		b.WriteByte(')')
	case *LikeOp:
		b.WriteByte('(')
		formatNode(b, x.L)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" LIKE ")
		b.WriteString(quoteSQL(x.Pattern))
		b.WriteByte(')')
	case *InOp:
		b.WriteByte('(')
		formatNode(b, x.L)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		for i, e := range x.List {
			if i > 0 {
				b.WriteString(", ")
			}
			formatNode(b, e)
		}
		b.WriteString("))")
	case *BetweenOp:
		b.WriteByte('(')
		formatNode(b, x.L)
		b.WriteString(" BETWEEN ")
		formatNode(b, x.Lo)
		b.WriteString(" AND ")
		formatNode(b, x.Hi)
		b.WriteByte(')')
	case *IsNullOp:
		b.WriteByte('(')
		formatNode(b, x.L)
		b.WriteString(" IS ")
		if x.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("NULL)")
	case *CaseOp:
		b.WriteString("CASE")
		for _, w := range x.Whens {
			b.WriteString(" WHEN ")
			formatNode(b, w.Cond)
			b.WriteString(" THEN ")
			formatNode(b, w.Then)
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			formatNode(b, x.Else)
		}
		b.WriteString(" END")
	case *FuncCall:
		b.WriteString(x.Name)
		b.WriteByte('(')
		switch {
		case x.Star:
			b.WriteByte('*')
		case x.Name == "CAST":
			formatNode(b, x.Args[0])
			b.WriteString(" AS FLOAT")
		default:
			if x.Distinct {
				b.WriteString("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				formatNode(b, a)
			}
		}
		b.WriteByte(')')
	default:
		panic(fmt.Sprintf("sql: cannot format node %T", n))
	}
}

// FormatSelect renders a parsed SELECT back to SQL text.
func FormatSelect(stmt *SelectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range stmt.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteByte('*')
			continue
		}
		formatNode(&b, it.Expr)
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(it.Alias)
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(stmt.Table)
	for _, j := range stmt.Joins {
		if j.Left {
			b.WriteString(" LEFT JOIN ")
		} else {
			b.WriteString(" JOIN ")
		}
		b.WriteString(j.Table)
		b.WriteString(" ON ")
		formatNode(&b, j.On)
	}
	if stmt.Where != nil {
		b.WriteString(" WHERE ")
		formatNode(&b, stmt.Where)
	}
	if len(stmt.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range stmt.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			formatNode(&b, g)
		}
	}
	if stmt.Having != nil {
		b.WriteString(" HAVING ")
		formatNode(&b, stmt.Having)
	}
	if len(stmt.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range stmt.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			if o.Ordinal > 0 {
				fmt.Fprintf(&b, "%d", o.Ordinal)
			} else {
				b.WriteString(o.Name)
			}
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if stmt.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", stmt.Limit)
	}
	return b.String()
}

// formatFloat renders a float so that it re-lexes as a float literal:
// the lexer has no exponent syntax, so 'f' formatting (shortest decimal
// that round-trips) is used, and a round value ("2") gets a ".0" so it
// does not re-parse as an integer and change type derivation.
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', -1, 64)
	if !strings.Contains(s, ".") {
		s += ".0"
	}
	return s
}

// quoteSQL single-quotes a string literal with '' escaping.
func quoteSQL(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
