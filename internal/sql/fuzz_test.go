package sql

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse feeds arbitrary bytes through the lexer and parser. The
// contract under fuzzing: Parse either returns a statement or an error —
// it never panics, never loops, and a statement that parses once
// round-trips through a second Parse of the same input identically
// (determinism).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT COUNT(*) FROM t",
		"SELECT a, b, SUM(c) FROM t WHERE a = 'x' GROUP BY a, b ORDER BY a LIMIT 10",
		"SELECT a FROM t JOIN u ON a = b",
		"SELECT a FROM t LEFT OUTER JOIN u ON a = b WHERE c > 5",
		"SELECT * FROM t",
		"SELECT a FROM t WHERE s = 'it''s quoted'",
		"SELECT SUM(a * (100 - b)) FROM t WHERE c >= 19940101 AND c < 19950101",
		"SELECT a FROM t WHERE b IN ('x', 'y', 'z')",
		"SELECT a FROM t WHERE b LIKE '%foo%'",
		"SELECT a FROM t WHERE b IS NOT NULL ORDER BY a DESC",
		"SELECT MIN(a), MAX(b), AVG(c), COUNT(d) FROM t GROUP BY e",
		"select lower_case from t",
		"SELECT",
		"SELECT FROM",
		"'unclosed",
		"SELECT a FROM t WHERE (((((a = 1)))))",
		"SELECT a -- no comment syntax",
		"\x00\xff\xfe",
		strings.Repeat("(", 100),
		strings.Repeat("SELECT ", 50),
		// Write-path statements.
		"CREATE TABLE t (a BIGINT NOT NULL, b TEXT, c DOUBLE)",
		"CREATE TABLE IF NOT EXISTS t (a INT)",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (-2, NULL)",
		"INSERT INTO t VALUES (1, 2.5, 'z')",
		"COPY t FROM 'f.csv' WITH HEADER DELIMITER '|'",
		"CREATE TABLE t (a VARCHAR(30))",
		"INSERT INTO t VALUES",
		"COPY t FROM",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, query string) {
		// ParseStatement covers the DDL/DML grammar too; same contract:
		// a statement or an error, never a panic.
		if s, err := ParseStatement(query); err == nil && s == nil {
			t.Fatalf("ParseStatement(%q) returned nil statement and nil error", query)
		}
		stmt, err := Parse(query)
		if err != nil {
			if stmt != nil {
				t.Fatalf("Parse(%q) returned both a statement and error %v", query, err)
			}
			return
		}
		if stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", query)
		}
		// Determinism: the same input must parse the same way again.
		stmt2, err2 := Parse(query)
		if err2 != nil || stmt2 == nil {
			t.Fatalf("Parse(%q) succeeded once then failed: %v", query, err2)
		}
		if stmt.Table != stmt2.Table || len(stmt.Items) != len(stmt2.Items) ||
			len(stmt.Joins) != len(stmt2.Joins) || len(stmt.GroupBy) != len(stmt2.GroupBy) {
			t.Fatalf("Parse(%q) is nondeterministic", query)
		}
		// Accepted identifiers came from the lexer, so they must be valid
		// UTF-8 the rest of the engine can store and hash.
		if !utf8.ValidString(stmt.Table) {
			t.Fatalf("Parse(%q) accepted non-UTF-8 table name %q", query, stmt.Table)
		}
	})
}

// TestParseFuzzRegressions pins inputs that the fuzzer (or thinking like
// one) found interesting: each must error cleanly rather than panic or
// mis-parse.
func TestParseFuzzRegressions(t *testing.T) {
	mustErr := []string{
		"",                      // empty input
		"   \t\n  ",             // whitespace only
		"SELECT",                // truncated after keyword
		"SELECT a FROM",         // truncated mid-clause
		"SELECT a FROM t WHERE", // trailing WHERE
		"SELECT a FROM t GROUP", // GROUP without BY
		"SELECT a FROM t ORDER", // ORDER without BY
		"SELECT a FROM t LIMIT", // LIMIT without count
		"SELECT a FROM t LIMIT 'x'",             // non-numeric limit
		"SELECT a FROM t JOIN",                  // JOIN without table
		"SELECT a FROM t JOIN u",                // JOIN without ON
		"SELECT a FROM t LEFT u ON a = b",       // LEFT without JOIN
		"SELECT 'unclosed FROM t",               // unterminated string literal
		"SELECT a FROM t WHERE a = 'x",          // unterminated at end
		"SELECT a FROM t extra trailing tokens", // garbage after statement
		"SELECT (a FROM t",                      // unbalanced paren
		"SELECT a) FROM t",                      // stray close paren
		"SELECT a,, b FROM t",                   // empty list element
		"SELECT , FROM t",                       // leading comma
		"FROM t SELECT a",                       // clauses out of order
		"SELECT a FROM t WHERE = 5",             // operator without lhs
		"SELECT a FROM t WHERE a = = 5",         // doubled operator
		"SELECT COUNT(* FROM t",                 // unclosed call
		"\x00",                                  // NUL byte
		"SELECT \xff\xfe FROM t",                // invalid UTF-8 identifier position
	}
	for _, q := range mustErr {
		stmt, err := func() (s *SelectStmt, err error) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Parse(%q) panicked: %v", q, p)
				}
			}()
			return Parse(q)
		}()
		if err == nil {
			t.Errorf("Parse(%q) = %+v, want error", q, stmt)
		}
	}

	// Inputs that must keep parsing (guard against over-tightening).
	mustOK := []string{
		"SELECT a FROM t",
		"SELECT a FROM t WHERE s = 'it''s'", // escaped quote stays one literal
		"select count(*) from t",            // keywords any case
		"SELECT a FROM t LIMIT 0",
	}
	for _, q := range mustOK {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v, want success", q, err)
		}
	}
}
