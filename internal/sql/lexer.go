// Package sql implements a SQL subset on top of the vectorized engine:
// SELECT with expressions and aggregates, FROM with INNER/LEFT JOINs on
// equality conditions, WHERE, GROUP BY, HAVING, ORDER BY and LIMIT. The
// planner compiles statements to exec operator trees, so every query runs
// under any combination of the paper's techniques.
package sql

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tSymbol  // ( ) , . * + - / %
	tCompare // = <> != < <= > >=
	tKeyword
)

type token struct {
	kind tokKind
	text string // keywords upper-cased, identifiers as written
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "LIKE": true, "IN": true, "BETWEEN": true,
	"IS": true, "NULL": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "JOIN": true, "INNER": true, "LEFT": true,
	"OUTER": true, "ON": true, "ASC": true, "DESC": true, "SUM": true,
	"COUNT": true, "MIN": true, "MAX": true, "AVG": true, "DISTINCT": true,
	"SUBSTRING": true, "EXISTS": true, "CAST": true, "FLOAT": true,
	// DDL/DML (the ingest write path).
	"CREATE": true, "TABLE": true, "IF": true, "INSERT": true, "INTO": true,
	"VALUES": true, "COPY": true, "WITH": true, "HEADER": true,
	"DELIMITER": true, "TINYINT": true, "SMALLINT": true, "INT": true,
	"INTEGER": true, "BIGINT": true, "DOUBLE": true, "TEXT": true,
	"VARCHAR": true, "STRING": true,
}

type lexer struct {
	src string
	pos int
}

// Error is a SQL parse error with a byte position.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql: at %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isAlpha(c):
		for l.pos < len(l.src) && (isAlpha(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tKeyword, text: up, pos: start}, nil
		}
		return token{kind: tIdent, text: word, pos: start}, nil

	case isDigit(c):
		seenDot := false
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || (l.src[l.pos] == '.' && !seenDot)) {
			if l.src[l.pos] == '.' {
				seenDot = true
			}
			l.pos++
		}
		return token{kind: tNumber, text: l.src[start:l.pos], pos: start}, nil

	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, errf(start, "unterminated string literal")
			}
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'') // escaped quote
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}

	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tCompare, text: l.src[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tCompare, text: l.src[start:l.pos], pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tCompare, text: "<>", pos: start}, nil
		}
		return token{}, errf(start, "unexpected '!'")
	case c == '=':
		l.pos++
		return token{kind: tCompare, text: "=", pos: start}, nil

	case strings.IndexByte("(),.*+-/%", c) >= 0:
		l.pos++
		return token{kind: tSymbol, text: string(c), pos: start}, nil
	}
	return token{}, errf(start, "unexpected character %q", c)
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tEOF {
			return out, nil
		}
	}
}
