package sql

import "strconv"

// ---- AST ----

// Node is an expression AST node.
type Node interface{ nodePos() int }

type base struct{ Pos int }

func (b base) nodePos() int { return b.Pos }

// ColRef is a (possibly table-qualified) column reference.
type ColRef struct {
	base
	Table string
	Name  string
}

// IntLit is an integer literal.
type IntLit struct {
	base
	V int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	base
	V float64
}

// StrLit is a string literal.
type StrLit struct {
	base
	V string
}

// NullLit is the NULL literal.
type NullLit struct{ base }

// BinOp is a binary operator: + - * / % = <> < <= > >= AND OR.
type BinOp struct {
	base
	Op   string
	L, R Node
}

// NotOp is NOT x.
type NotOp struct {
	base
	L Node
}

// NegOp is -x.
type NegOp struct {
	base
	L Node
}

// LikeOp is x [NOT] LIKE 'pattern'.
type LikeOp struct {
	base
	L       Node
	Pattern string
	Not     bool
}

// InOp is x [NOT] IN (a, b, ...).
type InOp struct {
	base
	L    Node
	List []Node
	Not  bool
}

// BetweenOp is x BETWEEN lo AND hi.
type BetweenOp struct {
	base
	L, Lo, Hi Node
}

// IsNullOp is x IS [NOT] NULL.
type IsNullOp struct {
	base
	L   Node
	Not bool
}

// WhenClause is one WHEN cond THEN result arm.
type WhenClause struct {
	Cond, Then Node
}

// CaseOp is CASE WHEN ... THEN ... [...] ELSE ... END.
type CaseOp struct {
	base
	Whens []WhenClause
	Else  Node
}

// FuncCall is an aggregate or scalar function call.
type FuncCall struct {
	base
	Name     string // upper case: SUM COUNT MIN MAX AVG SUBSTRING CAST
	Star     bool   // COUNT(*)
	Distinct bool
	Args     []Node
}

// SelectItem is one output column.
type SelectItem struct {
	Expr  Node
	Alias string
	Star  bool
}

// JoinClause is one JOIN in the FROM list.
type JoinClause struct {
	Left  bool // LEFT [OUTER] JOIN vs INNER JOIN
	Table string
	On    Node
}

// OrderItem orders the result by an output column (name or 1-based
// ordinal).
type OrderItem struct {
	Name    string
	Ordinal int // 1-based; 0 when Name is used
	Desc    bool
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Items   []SelectItem
	Table   string
	Joins   []JoinClause
	Where   Node
	GroupBy []Node
	Having  Node
	OrderBy []OrderItem
	Limit   int // -1 = none
}

// ---- parser ----

type parser struct {
	toks []token
	i    int
}

// Parse parses one SELECT statement.
func Parse(query string) (*SelectStmt, error) {
	toks, err := lexAll(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if !p.at(tEOF, "") {
		return nil, errf(p.cur().pos, "unexpected %q after statement", p.cur().text)
	}
	return stmt, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = "identifier"
		}
		return t, errf(t.pos, "expected %s, found %q", want, t.text)
	}
	p.i++
	return t, nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if _, err := p.expect(tKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}

	// Select list.
	for {
		if p.eat(tSymbol, "*") {
			stmt.Items = append(stmt.Items, SelectItem{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.eat(tKeyword, "AS") {
				t, err := p.expect(tIdent, "")
				if err != nil {
					return nil, err
				}
				item.Alias = t.text
			} else if p.at(tIdent, "") {
				item.Alias = p.cur().text
				p.i++
			}
			stmt.Items = append(stmt.Items, item)
		}
		if !p.eat(tSymbol, ",") {
			break
		}
	}

	// FROM.
	if _, err := p.expect(tKeyword, "FROM"); err != nil {
		return nil, err
	}
	t, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	stmt.Table = t.text

	// JOINs.
	for {
		left := false
		switch {
		case p.at(tKeyword, "JOIN"):
			p.i++
		case p.at(tKeyword, "INNER") && p.peek().text == "JOIN":
			p.i += 2
		case p.at(tKeyword, "LEFT"):
			p.i++
			p.eat(tKeyword, "OUTER")
			if _, err := p.expect(tKeyword, "JOIN"); err != nil {
				return nil, err
			}
			left = true
		default:
			goto afterJoins
		}
		jt, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Left: left, Table: jt.text, On: on})
	}
afterJoins:

	if p.eat(tKeyword, "WHERE") {
		if stmt.Where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if p.eat(tKeyword, "GROUP") {
		if _, err := p.expect(tKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.eat(tSymbol, ",") {
				break
			}
		}
	}
	if p.eat(tKeyword, "HAVING") {
		if stmt.Having, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if p.eat(tKeyword, "ORDER") {
		if _, err := p.expect(tKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			var item OrderItem
			switch {
			case p.at(tNumber, ""):
				n, err := strconv.Atoi(p.cur().text)
				if err != nil || n < 1 {
					return nil, errf(p.cur().pos, "bad ORDER BY ordinal %q", p.cur().text)
				}
				item.Ordinal = n
				p.i++
			case p.at(tIdent, ""):
				item.Name = p.cur().text
				p.i++
			default:
				return nil, errf(p.cur().pos, "ORDER BY expects a column name or ordinal")
			}
			if p.eat(tKeyword, "DESC") {
				item.Desc = true
			} else {
				p.eat(tKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.eat(tSymbol, ",") {
				break
			}
		}
	}
	if p.eat(tKeyword, "LIMIT") {
		t, err := p.expect(tNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, errf(t.pos, "bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

// expr parses with precedence: OR < AND < NOT < predicates < +- < */% < unary.
func (p *parser) expr() (Node, error) { return p.orExpr() }

func (p *parser) orExpr() (Node, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tKeyword, "OR") {
		pos := p.cur().pos
		p.i++
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{base: base{pos}, Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Node, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tKeyword, "AND") {
		pos := p.cur().pos
		p.i++
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{base: base{pos}, Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Node, error) {
	if p.at(tKeyword, "NOT") {
		pos := p.cur().pos
		p.i++
		l, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotOp{base: base{pos}, L: l}, nil
	}
	return p.predicate()
}

func (p *parser) predicate() (Node, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tCompare, ""):
			t := p.cur()
			p.i++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &BinOp{base: base{t.pos}, Op: t.text, L: l, R: r}

		case p.at(tKeyword, "LIKE"), p.at(tKeyword, "NOT") && p.peek().text == "LIKE":
			not := p.eat(tKeyword, "NOT")
			pos := p.cur().pos
			p.i++ // LIKE
			pat, err := p.expect(tString, "")
			if err != nil {
				return nil, err
			}
			l = &LikeOp{base: base{pos}, L: l, Pattern: pat.text, Not: not}

		case p.at(tKeyword, "IN"), p.at(tKeyword, "NOT") && p.peek().text == "IN":
			not := p.eat(tKeyword, "IN") == false && p.eat(tKeyword, "NOT")
			if not {
				if _, err := p.expect(tKeyword, "IN"); err != nil {
					return nil, err
				}
			}
			pos := p.cur().pos
			if _, err := p.expect(tSymbol, "("); err != nil {
				return nil, err
			}
			var list []Node
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if !p.eat(tSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(tSymbol, ")"); err != nil {
				return nil, err
			}
			l = &InOp{base: base{pos}, L: l, List: list, Not: not}

		case p.at(tKeyword, "BETWEEN"):
			pos := p.cur().pos
			p.i++
			lo, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tKeyword, "AND"); err != nil {
				return nil, err
			}
			hi, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &BetweenOp{base: base{pos}, L: l, Lo: lo, Hi: hi}

		case p.at(tKeyword, "IS"):
			pos := p.cur().pos
			p.i++
			not := p.eat(tKeyword, "NOT")
			if _, err := p.expect(tKeyword, "NULL"); err != nil {
				return nil, err
			}
			l = &IsNullOp{base: base{pos}, L: l, Not: not}

		default:
			return l, nil
		}
	}
}

func (p *parser) addExpr() (Node, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tSymbol, "+") || p.at(tSymbol, "-") {
		t := p.cur()
		p.i++
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{base: base{t.pos}, Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Node, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(tSymbol, "*") || p.at(tSymbol, "/") || p.at(tSymbol, "%") {
		t := p.cur()
		p.i++
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{base: base{t.pos}, Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Node, error) {
	if p.at(tSymbol, "-") {
		pos := p.cur().pos
		p.i++
		l, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &NegOp{base: base{pos}, L: l}, nil
	}
	return p.primary()
}

var aggNames = map[string]bool{"SUM": true, "COUNT": true, "MIN": true, "MAX": true, "AVG": true}

func (p *parser) primary() (Node, error) {
	t := p.cur()
	switch {
	case t.kind == tNumber:
		p.i++
		if idx := indexByte(t.text, '.'); idx >= 0 {
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, errf(t.pos, "bad number %q", t.text)
			}
			return &FloatLit{base: base{t.pos}, V: v}, nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(t.pos, "bad number %q", t.text)
		}
		return &IntLit{base: base{t.pos}, V: v}, nil

	case t.kind == tString:
		p.i++
		return &StrLit{base: base{t.pos}, V: t.text}, nil

	case t.kind == tKeyword && t.text == "NULL":
		p.i++
		return &NullLit{base: base{t.pos}}, nil

	case t.kind == tKeyword && t.text == "CASE":
		return p.caseExpr()

	case t.kind == tKeyword && (aggNames[t.text] || t.text == "SUBSTRING" || t.text == "CAST"):
		return p.funcCall()

	case t.kind == tSymbol && t.text == "(":
		p.i++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.kind == tIdent:
		p.i++
		if p.eat(tSymbol, ".") {
			col, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColRef{base: base{t.pos}, Table: t.text, Name: col.text}, nil
		}
		return &ColRef{base: base{t.pos}, Name: t.text}, nil
	}
	return nil, errf(t.pos, "unexpected %q in expression", t.text)
}

func (p *parser) caseExpr() (Node, error) {
	pos := p.cur().pos
	p.i++ // CASE
	c := &CaseOp{base: base{pos}}
	for p.at(tKeyword, "WHEN") {
		p.i++
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, errf(pos, "CASE requires at least one WHEN")
	}
	if p.eat(tKeyword, "ELSE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(tKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) funcCall() (Node, error) {
	t := p.cur()
	p.i++
	f := &FuncCall{base: base{t.pos}, Name: t.text}
	if _, err := p.expect(tSymbol, "("); err != nil {
		return nil, err
	}
	if f.Name == "COUNT" && p.eat(tSymbol, "*") {
		f.Star = true
		_, err := p.expect(tSymbol, ")")
		return f, err
	}
	if p.eat(tKeyword, "DISTINCT") {
		f.Distinct = true
	}
	if f.Name == "CAST" {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if _, err := p.expect(tKeyword, "AS"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tKeyword, "FLOAT"); err != nil {
			return nil, err
		}
		_, err = p.expect(tSymbol, ")")
		return f, err
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if !p.eat(tSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tSymbol, ")"); err != nil {
		return nil, err
	}
	if f.Name == "SUBSTRING" && len(f.Args) != 3 {
		return nil, errf(t.pos, "SUBSTRING takes (expr, start, length)")
	}
	return f, nil
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
