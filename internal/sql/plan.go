package sql

import (
	"context"
	"fmt"
	"strings"

	"ocht/internal/agg"
	"ocht/internal/exec"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// Tables resolves table names at plan time. Both *storage.Catalog and
// *storage.Snapshot implement it; planning against a snapshot pins the
// query to one immutable catalog version while ingest commits continue
// to land (DESIGN.md, "Write path & snapshots").
type Tables interface {
	Table(name string) *storage.Table
}

// Run parses, plans and executes a SELECT statement under the given query
// context (which carries the technique flags).
func Run(query string, cat Tables, qc *exec.QCtx) (*exec.Result, error) {
	return RunCtx(context.Background(), query, cat, qc)
}

// RunCtx is Run under a cancellation context: the deadline (or caller
// cancellation) is polled per batch by every operator, so long scans
// stop and the call returns an error wrapping exec.ErrCanceled.
func RunCtx(ctx context.Context, query string, cat Tables, qc *exec.QCtx) (*exec.Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	root, order, limit, err := Plan(stmt, cat)
	if err != nil {
		return nil, err
	}
	res, err := exec.RunCtx(ctx, qc, root)
	if err != nil {
		return nil, err
	}
	if len(order) > 0 {
		res.OrderBy(order...)
	}
	if limit >= 0 {
		res.Limit(limit)
	}
	return res, nil
}

// Plan compiles a parsed statement to an operator tree plus the post-run
// ordering and limit.
func Plan(stmt *SelectStmt, cat Tables) (exec.Op, []exec.SortKey, int, error) {
	p := &planner{cat: cat}
	op, err := p.plan(stmt)
	if err != nil {
		return nil, nil, 0, err
	}
	order, err := p.resolveOrder(stmt, op.Meta())
	if err != nil {
		return nil, nil, 0, err
	}
	return op, order, stmt.Limit, nil
}

type planner struct {
	cat Tables
}

func (p *planner) plan(stmt *SelectStmt) (exec.Op, error) {
	// FROM: base scan plus hash joins. All columns of each table are
	// scanned; name collisions across joined tables are rejected.
	var op exec.Op
	baseTab := p.cat.Table(stmt.Table)
	op = exec.NewScan(baseTab)

	// Predicate pushdown: WHERE conjuncts that touch only base-table
	// columns filter directly above the base scan, below the joins. That
	// places them where Filter.Open can derive zone ranges for the scan,
	// and is semantics-preserving: the base table is the probe side of
	// every join (Inner and LeftOuter alike), so dropping its rows early
	// only removes rows the upper filter would drop anyway. The remaining
	// conjuncts stay above the joins.
	var residual []Node
	if stmt.Where != nil {
		conjuncts := flattenAnd(stmt.Where)
		var pushed []Node
		for _, c := range conjuncts {
			if len(stmt.Joins) > 0 && colsWithin(c, op.Meta()) {
				pushed = append(pushed, c)
			} else {
				residual = append(residual, c)
			}
		}
		if len(pushed) > 0 {
			pred, err := compile(andAll(pushed), op.Meta())
			if err != nil {
				return nil, err
			}
			op = exec.NewFilter(op, pred)
		}
	}

	for _, j := range stmt.Joins {
		buildTab := p.cat.Table(j.Table)
		build := exec.NewScan(buildTab)
		probeKeys, buildKeys, err := splitJoinOn(j.On, op.Meta(), build.Meta())
		if err != nil {
			return nil, err
		}
		for _, m := range build.Meta() {
			if hasCol(op.Meta(), m.Name) {
				return nil, errf(j.On.nodePos(),
					"ambiguous column %q: joined tables must have distinct column names", m.Name)
			}
		}
		kind := exec.Inner
		if j.Left {
			kind = exec.LeftOuter
		}
		var payload []string
		for _, m := range build.Meta() {
			payload = append(payload, m.Name)
		}
		op = exec.NewHashJoin(kind, op, build, probeKeys, buildKeys, payload)
	}

	if len(residual) > 0 {
		pred, err := compile(andAll(residual), op.Meta())
		if err != nil {
			return nil, err
		}
		op = exec.NewFilter(op, pred)
	}

	hasAgg := stmt.GroupBy != nil || stmt.Having != nil
	for _, it := range stmt.Items {
		if !it.Star && containsAgg(it.Expr) {
			hasAgg = true
		}
	}
	if !hasAgg {
		return p.planProjection(stmt, op)
	}
	return p.planAggregate(stmt, op)
}

// planProjection handles plain SELECTs (no aggregation).
func (p *planner) planProjection(stmt *SelectStmt, op exec.Op) (exec.Op, error) {
	meta := op.Meta()
	var names []string
	var exprs []*exec.Expr
	for i, it := range stmt.Items {
		if it.Star {
			for _, m := range meta {
				names = append(names, m.Name)
				exprs = append(exprs, exec.Col(meta, m.Name))
			}
			continue
		}
		e, err := compile(it.Expr, meta)
		if err != nil {
			return nil, err
		}
		names = append(names, itemName(it, i))
		exprs = append(exprs, e)
	}
	return exec.NewProject(op, names, exprs), nil
}

// planAggregate lowers GROUP BY/aggregate selects: (1) collect distinct
// aggregate calls and group keys, (2) build a HashAgg, (3) rewrite the
// select items (and HAVING) against its output, adding a Project/Filter
// when the items are more than bare keys and aggregates.
func (p *planner) planAggregate(stmt *SelectStmt, op exec.Op) (exec.Op, error) {
	inMeta := op.Meta()

	// Group keys, named key0.. or by their column name.
	var keyNames []string
	var keyExprs []*exec.Expr
	keyRender := map[string]int{} // render -> key index
	for i, g := range stmt.GroupBy {
		e, err := compile(g, inMeta)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("key%d", i)
		if c, ok := g.(*ColRef); ok {
			name = c.Name
		}
		keyNames = append(keyNames, name)
		keyExprs = append(keyExprs, e)
		keyRender[render(g)] = i
	}

	// Distinct aggregate calls across select items and HAVING.
	var aggs []exec.AggExpr
	aggRender := map[string]int{} // render -> agg index
	var collect func(n Node) error
	collect = func(n Node) error {
		return walk(n, func(n Node) error {
			f, ok := n.(*FuncCall)
			if !ok || !aggNames[f.Name] {
				return nil
			}
			if f.Distinct {
				return errf(f.nodePos(), "DISTINCT aggregates are not supported")
			}
			key := render(f)
			if _, seen := aggRender[key]; seen {
				return nil
			}
			ae := exec.AggExpr{Name: fmt.Sprintf("agg%d", len(aggs))}
			switch f.Name {
			case "SUM":
				ae.Func = agg.Sum
			case "MIN":
				ae.Func = agg.Min
			case "MAX":
				ae.Func = agg.Max
			case "AVG":
				ae.Func = exec.Avg
			case "COUNT":
				if f.Star {
					ae.Func = agg.CountStar
				} else {
					ae.Func = agg.Count
				}
			}
			if !f.Star {
				if len(f.Args) != 1 {
					return errf(f.nodePos(), "%s takes one argument", f.Name)
				}
				arg, err := compile(f.Args[0], inMeta)
				if err != nil {
					return err
				}
				// The aggregator folds integer (scaled-decimal) inputs;
				// a DOUBLE argument would panic deep in Update, so reject
				// it at plan time. COUNT never reads the values.
				if arg.Type() == vec.F64 && f.Name != "COUNT" {
					return errf(f.nodePos(), "%s over a DOUBLE expression is not supported", f.Name)
				}
				ae.Arg = arg
			}
			aggRender[key] = len(aggs)
			aggs = append(aggs, ae)
			return nil
		})
	}
	for _, it := range stmt.Items {
		if it.Star {
			return nil, errf(0, "SELECT * cannot be combined with aggregation")
		}
		if err := collect(it.Expr); err != nil {
			return nil, err
		}
	}
	if stmt.Having != nil {
		if err := collect(stmt.Having); err != nil {
			return nil, err
		}
	}

	h := exec.NewHashAgg(op, keyNames, keyExprs, aggs)
	hm := h.Meta()
	var out exec.Op = h

	if stmt.Having != nil {
		pred, err := compileRewritten(stmt.Having, hm, keyRender, aggRender, keyNames)
		if err != nil {
			return nil, err
		}
		out = exec.NewFilter(out, pred)
	}

	// Final projection: select items against the aggregation output.
	var names []string
	var exprs []*exec.Expr
	for i, it := range stmt.Items {
		e, err := compileRewritten(it.Expr, hm, keyRender, aggRender, keyNames)
		if err != nil {
			return nil, err
		}
		names = append(names, itemName(it, i))
		exprs = append(exprs, e)
	}
	return exec.NewProject(out, names, exprs), nil
}

func itemName(it SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ColRef); ok {
		return c.Name
	}
	if f, ok := it.Expr.(*FuncCall); ok {
		return strings.ToLower(f.Name)
	}
	return fmt.Sprintf("col%d", i)
}

func (p *planner) resolveOrder(stmt *SelectStmt, meta []exec.Meta) ([]exec.SortKey, error) {
	var keys []exec.SortKey
	for _, o := range stmt.OrderBy {
		idx := -1
		if o.Ordinal > 0 {
			if o.Ordinal > len(meta) {
				return nil, errf(0, "ORDER BY ordinal %d out of range", o.Ordinal)
			}
			idx = o.Ordinal - 1
		} else {
			for i, m := range meta {
				if m.Name == o.Name {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, errf(0, "ORDER BY references unknown output column %q", o.Name)
			}
		}
		keys = append(keys, exec.SortKey{Col: idx, Desc: o.Desc})
	}
	return keys, nil
}

// splitJoinOn decomposes an ON condition into equality key pairs: a
// conjunction of probeCol = buildCol terms (in either order).
func splitJoinOn(on Node, probeMeta, buildMeta []exec.Meta) (probeKeys, buildKeys []string, err error) {
	var terms []Node
	var flatten func(n Node)
	flatten = func(n Node) {
		if b, ok := n.(*BinOp); ok && b.Op == "AND" {
			flatten(b.L)
			flatten(b.R)
			return
		}
		terms = append(terms, n)
	}
	flatten(on)
	for _, t := range terms {
		b, ok := t.(*BinOp)
		if !ok || b.Op != "=" {
			return nil, nil, errf(t.nodePos(), "JOIN ON supports only equality conjunctions")
		}
		lc, lok := b.L.(*ColRef)
		rc, rok := b.R.(*ColRef)
		if !lok || !rok {
			return nil, nil, errf(t.nodePos(), "JOIN ON supports only column = column")
		}
		switch {
		case hasCol(probeMeta, lc.Name) && hasCol(buildMeta, rc.Name):
			probeKeys = append(probeKeys, lc.Name)
			buildKeys = append(buildKeys, rc.Name)
		case hasCol(probeMeta, rc.Name) && hasCol(buildMeta, lc.Name):
			probeKeys = append(probeKeys, rc.Name)
			buildKeys = append(buildKeys, lc.Name)
		default:
			return nil, nil, errf(t.nodePos(),
				"JOIN ON columns %q and %q do not span the two sides", lc.Name, rc.Name)
		}
	}
	if len(probeKeys) == 0 {
		return nil, nil, errf(on.nodePos(), "JOIN ON needs at least one equality")
	}
	return probeKeys, buildKeys, nil
}

// flattenAnd splits an AST predicate into its top-level AND conjuncts.
func flattenAnd(n Node) []Node {
	if b, ok := n.(*BinOp); ok && b.Op == "AND" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []Node{n}
}

// andAll rejoins conjuncts into one predicate tree.
func andAll(terms []Node) Node {
	out := terms[0]
	for _, t := range terms[1:] {
		out = &BinOp{Op: "AND", L: out, R: t}
	}
	return out
}

// colsWithin reports whether every column the expression references
// resolves in the given schema.
func colsWithin(n Node, meta []exec.Meta) bool {
	ok := true
	walk(n, func(n Node) error {
		if c, isCol := n.(*ColRef); isCol && !hasCol(meta, c.Name) {
			ok = false
		}
		return nil
	})
	return ok
}

func hasCol(meta []exec.Meta, name string) bool {
	for _, m := range meta {
		if m.Name == name {
			return true
		}
	}
	return false
}

// walk visits every node of an expression tree.
func walk(n Node, f func(Node) error) error {
	if n == nil {
		return nil
	}
	if err := f(n); err != nil {
		return err
	}
	switch x := n.(type) {
	case *BinOp:
		if err := walk(x.L, f); err != nil {
			return err
		}
		return walk(x.R, f)
	case *NotOp:
		return walk(x.L, f)
	case *NegOp:
		return walk(x.L, f)
	case *LikeOp:
		return walk(x.L, f)
	case *InOp:
		if err := walk(x.L, f); err != nil {
			return err
		}
		for _, e := range x.List {
			if err := walk(e, f); err != nil {
				return err
			}
		}
	case *BetweenOp:
		if err := walk(x.L, f); err != nil {
			return err
		}
		if err := walk(x.Lo, f); err != nil {
			return err
		}
		return walk(x.Hi, f)
	case *IsNullOp:
		return walk(x.L, f)
	case *CaseOp:
		for _, w := range x.Whens {
			if err := walk(w.Cond, f); err != nil {
				return err
			}
			if err := walk(w.Then, f); err != nil {
				return err
			}
		}
		return walk(x.Else, f)
	case *FuncCall:
		for _, a := range x.Args {
			if err := walk(a, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// render produces a canonical string for structural equality of
// expressions (aggregate dedup, group-key matching).
func render(n Node) string {
	switch x := n.(type) {
	case *ColRef:
		return "col:" + x.Name
	case *IntLit:
		return fmt.Sprintf("int:%d", x.V)
	case *FloatLit:
		return fmt.Sprintf("f64:%g", x.V)
	case *StrLit:
		return fmt.Sprintf("str:%q", x.V)
	case *NullLit:
		return "null"
	case *BinOp:
		return "(" + render(x.L) + x.Op + render(x.R) + ")"
	case *NotOp:
		return "not(" + render(x.L) + ")"
	case *NegOp:
		return "neg(" + render(x.L) + ")"
	case *LikeOp:
		return fmt.Sprintf("like(%s,%q,%v)", render(x.L), x.Pattern, x.Not)
	case *InOp:
		s := "in(" + render(x.L)
		for _, e := range x.List {
			s += "," + render(e)
		}
		return s + ")"
	case *BetweenOp:
		return "between(" + render(x.L) + "," + render(x.Lo) + "," + render(x.Hi) + ")"
	case *IsNullOp:
		return fmt.Sprintf("isnull(%s,%v)", render(x.L), x.Not)
	case *CaseOp:
		s := "case("
		for _, w := range x.Whens {
			s += render(w.Cond) + "->" + render(w.Then) + ";"
		}
		if x.Else != nil {
			s += "else:" + render(x.Else)
		}
		return s + ")"
	case *FuncCall:
		s := x.Name + "("
		if x.Star {
			s += "*"
		}
		for i, a := range x.Args {
			if i > 0 {
				s += ","
			}
			s += render(a)
		}
		return s + ")"
	}
	return "?"
}

// containsAgg reports whether the expression contains an aggregate call.
func containsAgg(n Node) bool {
	found := false
	walk(n, func(n Node) error {
		if f, ok := n.(*FuncCall); ok && aggNames[f.Name] {
			found = true
		}
		return nil
	})
	return found
}
