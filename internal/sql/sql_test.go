package sql

import (
	"fmt"
	"strings"
	"testing"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

func testCatalog() *storage.Catalog {
	cat := storage.NewCatalog()

	region := storage.NewColumn("region", vec.Str, false)
	product := storage.NewColumn("product_id", vec.I64, false)
	qty := storage.NewColumn("qty", vec.I64, false)
	price := storage.NewColumn("price", vec.I64, false)
	note := storage.NewColumn("note", vec.Str, true)
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < 10_000; i++ {
		region.AppendString(regions[i%4])
		product.AppendInt(int64(i % 50))
		qty.AppendInt(int64(i%10) + 1)
		price.AppendInt(int64(i%100) * 10)
		if i%9 == 0 {
			note.AppendNull()
		} else {
			note.AppendString(fmt.Sprintf("note %d here", i%5))
		}
	}
	sales := storage.NewTable("sales", region, product, qty, price, note)
	sales.Seal()
	cat.Add(sales)

	pid := storage.NewColumn("pid", vec.I64, false)
	pname := storage.NewColumn("pname", vec.Str, false)
	cat2 := storage.NewColumn("category", vec.Str, false)
	for i := 0; i < 50; i++ {
		pid.AppendInt(int64(i))
		pname.AppendString(fmt.Sprintf("product-%02d", i))
		cat2.AppendString([]string{"tools", "toys", "food"}[i%3])
	}
	products := storage.NewTable("products", pid, pname, cat2)
	products.Seal()
	cat.Add(products)
	return cat
}

func mustRun(t *testing.T, cat *storage.Catalog, q string) *exec.Result {
	t.Helper()
	res, err := Run(q, cat, exec.NewQCtx(core.All()))
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func TestSelectStar(t *testing.T) {
	cat := testCatalog()
	res := mustRun(t, cat, "SELECT * FROM products LIMIT 3")
	if len(res.Rows) != 3 || len(res.Names) != 3 {
		t.Fatalf("shape: %dx%d", len(res.Rows), len(res.Names))
	}
	if res.Names[1] != "pname" {
		t.Error("column names must pass through")
	}
}

func TestWhereAndProjection(t *testing.T) {
	cat := testCatalog()
	res := mustRun(t, cat,
		"SELECT region, qty * price AS revenue FROM sales WHERE qty > 5 AND region = 'north' LIMIT 100000")
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row[0].S != "north" {
			t.Fatal("filter violated")
		}
	}
	if res.Names[1] != "revenue" {
		t.Error("alias lost")
	}
}

func TestGroupByAggregates(t *testing.T) {
	cat := testCatalog()
	res := mustRun(t, cat, `
		SELECT region, COUNT(*) AS cnt, SUM(qty) AS total, MIN(price), MAX(price), AVG(qty)
		FROM sales GROUP BY region ORDER BY region`)
	if len(res.Rows) != 4 {
		t.Fatalf("groups: %d", len(res.Rows))
	}
	var cnt int64
	for _, row := range res.Rows {
		cnt += row[1].I
	}
	if cnt != 10_000 {
		t.Fatalf("counts sum to %d", cnt)
	}
	if res.Rows[0][0].S != "east" {
		t.Errorf("order by region: first row %q", res.Rows[0][0].S)
	}
	// AVG of qty (1..10 uniform) is 5.5.
	if res.Rows[0][5].F < 5 || res.Rows[0][5].F > 6 {
		t.Errorf("avg qty %f", res.Rows[0][5].F)
	}
}

func TestHavingAndExpressionOverAggregates(t *testing.T) {
	cat := testCatalog()
	res := mustRun(t, cat, `
		SELECT product_id, SUM(price) * 2 AS dbl
		FROM sales GROUP BY product_id HAVING COUNT(*) > 100 ORDER BY dbl DESC LIMIT 5`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if res.Rows[0][1].Less(res.Rows[1][1]) {
		t.Error("descending order violated")
	}
}

func TestJoin(t *testing.T) {
	cat := testCatalog()
	res := mustRun(t, cat, `
		SELECT category, SUM(qty) AS total
		FROM sales JOIN products ON product_id = pid
		GROUP BY category ORDER BY total DESC`)
	if len(res.Rows) != 3 {
		t.Fatalf("categories: %d", len(res.Rows))
	}
	var total int64
	for _, row := range res.Rows {
		total += row[1].I
	}
	// Every sales row joins exactly one product: SUM(qty) over all rows.
	want := int64(0)
	for i := 0; i < 10_000; i++ {
		want += int64(i%10) + 1
	}
	if total != want {
		t.Fatalf("join total %d want %d", total, want)
	}
}

func TestLeftJoinAndIsNull(t *testing.T) {
	cat := storage.NewCatalog()
	a := storage.NewColumn("id", vec.I64, false)
	for i := 0; i < 10; i++ {
		a.AppendInt(int64(i))
	}
	left := storage.NewTable("l", a)
	left.Seal()
	cat.Add(left)
	b := storage.NewColumn("rid", vec.I64, false)
	v := storage.NewColumn("v", vec.I64, false)
	for i := 0; i < 5; i++ {
		b.AppendInt(int64(i * 2))
		v.AppendInt(int64(i * 100))
	}
	right := storage.NewTable("r", b, v)
	right.Seal()
	cat.Add(right)

	res := mustRun(t, cat, "SELECT id, v FROM l LEFT JOIN r ON id = rid ORDER BY id")
	if len(res.Rows) != 10 {
		t.Fatalf("left join rows: %d", len(res.Rows))
	}
	if !res.Rows[1][1].Null || res.Rows[0][1].Null {
		t.Error("NULL padding wrong")
	}

	res2 := mustRun(t, cat, "SELECT COUNT(*) FROM l LEFT JOIN r ON id = rid WHERE v IS NULL")
	if res2.Rows[0][0].I != 5 {
		t.Errorf("IS NULL count %d", res2.Rows[0][0].I)
	}
}

func TestStringPredicates(t *testing.T) {
	cat := testCatalog()
	res := mustRun(t, cat, `
		SELECT COUNT(*) FROM sales
		WHERE region LIKE 'n%' AND note IS NOT NULL AND region IN ('north', 'south')`)
	if res.Rows[0][0].I == 0 {
		t.Fatal("expected matches")
	}
	res2 := mustRun(t, cat, "SELECT COUNT(*) FROM sales WHERE region NOT LIKE 'n%'")
	res3 := mustRun(t, cat, "SELECT COUNT(*) FROM sales WHERE region LIKE 'n%'")
	if res2.Rows[0][0].I+res3.Rows[0][0].I != 10_000 {
		t.Error("LIKE / NOT LIKE must partition")
	}
}

func TestCaseAndBetween(t *testing.T) {
	cat := testCatalog()
	res := mustRun(t, cat, `
		SELECT SUM(CASE WHEN qty BETWEEN 1 AND 3 THEN 1 ELSE 0 END) AS small,
		       SUM(CASE WHEN qty > 3 THEN 1 ELSE 0 END) AS big,
		       COUNT(*) AS all_rows
		FROM sales`)
	row := res.Rows[0]
	if row[0].I+row[1].I != row[2].I {
		t.Fatalf("case partition: %d + %d != %d", row[0].I, row[1].I, row[2].I)
	}
}

func TestMultiWhenCase(t *testing.T) {
	cat := testCatalog()
	res := mustRun(t, cat, `
		SELECT SUM(CASE WHEN qty < 3 THEN 1 WHEN qty < 7 THEN 10 ELSE 100 END) AS score
		FROM sales WHERE product_id = 0`)
	if res.Rows[0][0].I <= 0 {
		t.Fatal("multi-when")
	}
}

func TestCastAndDivision(t *testing.T) {
	cat := testCatalog()
	res := mustRun(t, cat, `
		SELECT CAST(SUM(qty) AS FLOAT) / CAST(COUNT(*) AS FLOAT) AS mean FROM sales`)
	if res.Rows[0][0].F < 5 || res.Rows[0][0].F > 6 {
		t.Fatalf("mean %v", res.Rows[0][0])
	}
}

func TestSubstring(t *testing.T) {
	cat := testCatalog()
	res := mustRun(t, cat, `
		SELECT SUBSTRING(region, 1, 2) AS pre, COUNT(*) FROM sales GROUP BY SUBSTRING(region, 1, 2) ORDER BY pre`)
	if len(res.Rows) != 4 { // no, so, ea, we
		t.Fatalf("prefixes: %d", len(res.Rows))
	}
	if res.Rows[0][0].S != "ea" {
		t.Errorf("first prefix %q", res.Rows[0][0].S)
	}
}

func TestResultsAgreeAcrossFlags(t *testing.T) {
	cat := testCatalog()
	queries := []string{
		"SELECT region, COUNT(*), SUM(price) FROM sales GROUP BY region ORDER BY region",
		"SELECT category, MAX(price) FROM sales JOIN products ON product_id = pid GROUP BY category ORDER BY category",
		"SELECT note, COUNT(*) FROM sales GROUP BY note ORDER BY 2 DESC",
	}
	for _, q := range queries {
		var ref string
		for _, flags := range []core.Flags{core.Vanilla(), core.All()} {
			res, err := Run(q, cat, exec.NewQCtx(flags))
			if err != nil {
				t.Fatal(err)
			}
			got := res.String()
			if ref == "" {
				ref = got
			} else if ref != got {
				t.Errorf("query %q differs across flags:\n%s\nvs\n%s", q, ref, got)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cat := testCatalog()
	cases := []string{
		"SELEC * FROM sales",
		"SELECT FROM sales",
		"SELECT * FROM",
		"SELECT * FROM sales WHERE",
		"SELECT * FROM sales LIMIT -1",
		"SELECT unknown_col FROM sales",
		"SELECT region FROM sales GROUP BY product_id", // region not grouped
		"SELECT * FROM sales JOIN products ON qty < pid",
		"SELECT 'unterminated FROM sales",
		"SELECT region, SUM(qty) FROM sales GROUP BY region ORDER BY nosuch",
	}
	for _, q := range cases {
		if _, err := Run(q, cat, exec.NewQCtx(core.Vanilla())); err == nil {
			t.Errorf("query %q should fail", q)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	cat := storage.NewCatalog()
	s := storage.NewColumn("s", vec.Str, false)
	s.AppendString("it's")
	s.AppendString("plain")
	tbl := storage.NewTable("t", s)
	tbl.Seal()
	cat.Add(tbl)
	res := mustRun(t, cat, "SELECT COUNT(*) FROM t WHERE s = 'it''s'")
	if res.Rows[0][0].I != 1 {
		t.Error("quote escaping")
	}
}

func TestOrderByOrdinalAndName(t *testing.T) {
	cat := testCatalog()
	byName := mustRun(t, cat, "SELECT region, SUM(qty) AS s FROM sales GROUP BY region ORDER BY s DESC")
	byOrd := mustRun(t, cat, "SELECT region, SUM(qty) AS s FROM sales GROUP BY region ORDER BY 2 DESC")
	if byName.String() != byOrd.String() {
		t.Error("ordinal and name ordering must agree")
	}
}

func TestLexer(t *testing.T) {
	toks, err := lexAll("SELECT a1,b.c FROM t WHERE x >= 10.5 AND y <> 'a''b'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		kinds = append(kinds, fmt.Sprintf("%d:%s", tk.kind, tk.text))
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"6:SELECT", "1:a1", "4:.", "2:10.5", "5:<>", "3:a'b"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing token %q in %s", want, joined)
		}
	}
}

func TestStringMinMax(t *testing.T) {
	cat := testCatalog()
	res := mustRun(t, cat, `
		SELECT category, MIN(pname) AS first, MAX(pname) AS last
		FROM products GROUP BY category ORDER BY category`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups: %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].S == "" || row[2].S == "" || row[1].S > row[2].S {
			t.Fatalf("min %q max %q", row[1].S, row[2].S)
		}
	}
	// food = products 2,5,8,..: min product-02, max product-47.
	if res.Rows[0][0].S != "food" || res.Rows[0][1].S != "product-02" || res.Rows[0][2].S != "product-47" {
		t.Errorf("food row: %v", res.Rows[0])
	}
}
