package storage

import (
	"fmt"
	"sync"
	"testing"

	"ocht/internal/vec"
)

func intTable(name string, rows int, base int64) *Table {
	c := NewColumn("v", vec.I64, false)
	for i := 0; i < rows; i++ {
		c.AppendInt(base + int64(i))
	}
	t := NewTable(name, c)
	t.Seal()
	return t
}

// TestCatalogConcurrent hammers Add/Table/Version/Snapshot from many
// goroutines; run under -race it verifies the catalog's synchronization
// (the seed relied on a comment-only immutability contract).
func TestCatalogConcurrent(t *testing.T) {
	cat := NewCatalog()
	cat.Add(intTable("t0", 10, 0))

	const writers, readers, iters = 4, 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				cat.Add(intTable(fmt.Sprintf("t%d", w), 10+i%7, int64(i)))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v1 := cat.Version()
				tab := cat.Table("t0")
				if tab.Rows() == 0 {
					t.Error("empty table observed")
					return
				}
				snap := cat.Snapshot()
				if snap.Version() < v1 {
					t.Errorf("snapshot version %d went backwards from %d", snap.Version(), v1)
					return
				}
				if _, ok := snap.TableOK("t0"); !ok {
					t.Error("snapshot lost t0")
					return
				}
				_ = cat.Names()
				_ = cat.Tables()
			}
		}()
	}
	wg.Wait()
	if got := cat.Version(); got < uint64(writers*iters) {
		t.Fatalf("version %d, want >= %d", got, writers*iters)
	}
}

// TestSnapshotFrozen pins a snapshot, replaces a table in the catalog,
// and verifies the snapshot still resolves the old value while the
// catalog serves the new one.
func TestSnapshotFrozen(t *testing.T) {
	cat := NewCatalog()
	cat.Add(intTable("t", 100, 0))
	snap := cat.Snapshot()
	v := snap.Version()

	cat.Add(intTable("t", 250, 0))
	if got := snap.Table("t").Rows(); got != 100 {
		t.Fatalf("snapshot rows = %d, want frozen 100", got)
	}
	if got := cat.Table("t").Rows(); got != 250 {
		t.Fatalf("catalog rows = %d, want 250", got)
	}
	if cat.Version() <= v {
		t.Fatalf("catalog version %d did not advance past %d", cat.Version(), v)
	}
	if snap.Version() != v {
		t.Fatalf("snapshot version mutated: %d != %d", snap.Version(), v)
	}
}

// TestExtendTable verifies copy-on-write append: the extended table holds
// base+delta rows and zone maps while the base remains untouched.
func TestExtendTable(t *testing.T) {
	base := intTable("t", 100, 0)
	delta := intTable("t", 50, 1000)
	delta.Cols[0].Name = "v"

	ext := ExtendTable(base, delta)
	if ext.Rows() != 150 {
		t.Fatalf("extended rows = %d, want 150", ext.Rows())
	}
	if base.Rows() != 100 || base.Cols[0].Blocks() != 1 {
		t.Fatalf("base mutated: rows=%d blocks=%d", base.Rows(), base.Cols[0].Blocks())
	}
	d := ext.Cols[0].TotalDomain()
	if !d.Valid || d.Min != 0 || d.Max != 1049 {
		t.Fatalf("extended domain = %+v, want [0,1049]", d)
	}
	bd := base.Cols[0].TotalDomain()
	if !bd.Valid || bd.Min != 0 || bd.Max != 99 {
		t.Fatalf("base domain mutated: %+v", bd)
	}
}
