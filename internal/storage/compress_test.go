package storage

import (
	"bytes"
	"fmt"
	"testing"

	"ocht/internal/blockzip"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

// withCompression runs fn under the given seal-compression policy and
// restores the defaults afterwards (the knobs are process-global).
func withCompression(t *testing.T, mode CompressMode, minRows int, budget int64, fn func()) {
	t.Helper()
	SetSealCompression(mode)
	SetCompressMinRows(minRows)
	SetCompressBudget(budget)
	defer func() {
		SetSealCompression(CompressAuto)
		SetCompressMinRows(4096)
		SetCompressBudget(blockzip.DefaultBudget)
	}()
	fn()
}

// commentStr generates TPC-H-comment-like redundant text.
func commentStr(i int) string {
	words := []string{"pending", "deposits", "sleep", "furiously", "according",
		"requests", "carefully", "final", "accounts", "ironic"}
	return fmt.Sprintf("%s %s %s among the %s %s #%d",
		words[i%10], words[(i/3)%10], words[(i/7)%10],
		words[(i/11)%10], words[(i/13)%10], i%97)
}

// buildStrColumn seals rows of generated strings (every 17th row NULL)
// under the current compression policy.
func buildStrColumn(rows int) *Column {
	c := NewColumn("s", vec.Str, true)
	for i := 0; i < rows; i++ {
		if i%17 == 0 {
			c.AppendNull()
		} else {
			c.AppendString(commentStr(i))
		}
	}
	c.Seal()
	return c
}

// TestCompressedColumnEquivalence checks that a compressed column resolves
// to exactly the same strings as a plain one through every read path:
// eager ScanBlock, the zero-copy ViewBlock (virtual accessors over the
// bit-packed codes), and point StrAt.
func TestCompressedColumnEquivalence(t *testing.T) {
	const rows = 2 * BlockRows / 8
	var plain, comp *Column
	withCompression(t, CompressOff, 1, blockzip.DefaultBudget, func() {
		plain = buildStrColumn(rows)
	})
	withCompression(t, CompressOn, 1, blockzip.DefaultBudget, func() {
		comp = buildStrColumn(rows)
	})
	if comp.Blocks() != plain.Blocks() {
		t.Fatalf("block counts differ: %d vs %d", comp.Blocks(), plain.Blocks())
	}
	for bi := 0; bi < comp.Blocks(); bi++ {
		if !comp.Block(bi).DictCompressed() {
			t.Fatalf("block %d not compressed under CompressOn", bi)
		}
	}

	st := strs.NewStore(false)
	pBuf, cBuf := vec.New(vec.Str, BlockRows), vec.New(vec.Str, BlockRows)
	pBuf.Nulls = make([]bool, BlockRows)
	cBuf.Nulls = make([]bool, BlockRows)
	pView, cView := &vec.Vector{}, &vec.Vector{}
	var pRefs, cRefs []vec.StrRef
	var scratch []byte
	for bi := 0; bi < comp.Blocks(); bi++ {
		pn := plain.ScanBlock(bi, pBuf, st)
		cn := comp.ScanBlock(bi, cBuf, st)
		if pn != cn {
			t.Fatalf("block %d: %d vs %d rows", bi, cn, pn)
		}
		pv, pRefs2, _ := plain.ViewBlock(bi, pView, st, pRefs)
		cv, cRefs2, _ := comp.ViewBlock(bi, cView, st, cRefs)
		pRefs, cRefs = pRefs2, cRefs2
		if pv != cv {
			t.Fatalf("block %d views: %d vs %d rows", bi, cv, pv)
		}
		for i := 0; i < pn; i++ {
			if pBuf.Nulls[i] != cBuf.Nulls[i] {
				t.Fatalf("block %d row %d: null mask differs", bi, i)
			}
			want := st.Get(pBuf.Str[i])
			if got := st.Get(cBuf.Str[i]); got != want {
				t.Fatalf("block %d row %d scan: %q, want %q", bi, i, got, want)
			}
			if got := st.Get(cView.StrRefAt(i)); got != want {
				t.Fatalf("block %d row %d view: %q, want %q", bi, i, got, want)
			}
			var s []byte
			s, _, scratch = comp.StrAt(bi, i, scratch)
			if string(s) != want {
				t.Fatalf("block %d row %d StrAt: %q, want %q", bi, i, s, want)
			}
		}
	}
}

// TestPointAccessDecodesOnlyRequested is the acceptance check for the
// compressed gather contract: a point StrAt on a compressed sealed block
// decodes only the requested entry's bucket chain — the per-access decoded
// byte count must stay far below the dictionary's raw size, and a handful
// of accesses must not add up to a block's worth of decompression.
func TestPointAccessDecodesOnlyRequested(t *testing.T) {
	var c *Column
	withCompression(t, CompressOn, 1, blockzip.DefaultBudget, func() {
		c = buildStrColumn(BlockRows / 4)
	})
	b := c.Block(0)
	if !b.DictCompressed() {
		t.Fatal("block not compressed")
	}
	raw := b.ZDict.RawBytes()
	perAccessCap := int64((1 << blockzip.DefaultBucketShift) * b.ZDict.MaxLen())
	var total int64
	var scratch []byte
	const accesses = 64
	for i := 0; i < accesses; i++ {
		row := (i * 7919) % b.N
		var decoded int
		_, decoded, scratch = c.StrAt(0, row, scratch)
		if int64(decoded) > perAccessCap {
			t.Fatalf("access %d decoded %d bytes, cap %d (bucket chain only)",
				i, decoded, perAccessCap)
		}
		total += int64(decoded)
	}
	if total >= raw {
		t.Fatalf("%d point accesses decoded %d bytes >= whole dictionary (%d)",
			accesses, total, raw)
	}
}

// TestCompressBudgetFallback checks satellite behaviour for oversized
// dictionaries: the build fails with ErrBudget, the block seals plain with
// its full dictionary intact (never empty), the failure is counted, and
// the column surfaces the error.
func TestCompressBudgetFallback(t *testing.T) {
	withCompression(t, CompressOn, 1, 64, func() { // 64-byte budget: everything overflows
		_, fb0 := CompressionStats()
		c := buildStrColumn(512)
		b := c.Block(0)
		if b.DictCompressed() {
			t.Fatal("block compressed despite budget overflow")
		}
		if len(b.Dict) == 0 {
			t.Fatal("fallback produced an empty dictionary")
		}
		if err := c.CompressErr(); err == nil {
			t.Fatal("CompressErr is nil after budget overflow")
		}
		if _, fb := CompressionStats(); fb != fb0+1 {
			t.Fatalf("fallback counter %d, want %d", fb, fb0+1)
		}
		// The plain fallback must still read correctly.
		st := strs.NewStore(false)
		buf := vec.New(vec.Str, BlockRows)
		buf.Nulls = make([]bool, BlockRows)
		n := c.ScanBlock(0, buf, st)
		if n != 512 {
			t.Fatalf("fallback block scans %d rows, want 512", n)
		}
	})
}

// TestCompressAutoSkipsIncompressible checks that auto mode keeps a block
// plain when compression would not shrink it (a tiny dictionary) and that
// small blocks below the row threshold never pay dictionary learning.
func TestCompressAutoSkipsIncompressible(t *testing.T) {
	withCompression(t, CompressAuto, 1, blockzip.DefaultBudget, func() {
		c := NewColumn("s", vec.Str, false)
		for i := 0; i < 64; i++ {
			c.AppendString([]string{"a", "b", "c"}[i%3])
		}
		c.Seal()
		if c.Block(0).DictCompressed() {
			t.Fatal("auto mode compressed a 3-entry dictionary")
		}
	})
	withCompression(t, CompressOn, 1<<20, blockzip.DefaultBudget, func() {
		c := buildStrColumn(512) // below the row threshold
		if c.Block(0).DictCompressed() {
			t.Fatal("block below CompressMinRows was compressed")
		}
	})
}

// TestCompressedFileRoundTrip checks the v3 on-disk format: a compressed
// table round-trips byte-identically and the reloaded blocks stay in the
// compressed representation.
func TestCompressedFileRoundTrip(t *testing.T) {
	var c *Column
	withCompression(t, CompressOn, 1, blockzip.DefaultBudget, func() {
		c = buildStrColumn(BlockRows / 8)
	})
	orig := NewTable("zt", c)
	var buf bytes.Buffer
	if err := WriteTable(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gb := got.Cols[0].Block(0)
	if !gb.DictCompressed() {
		t.Fatal("reloaded block lost its compressed dictionary")
	}
	ob := orig.Cols[0].Block(0)
	if gb.DictLen() != ob.DictLen() || gb.N != ob.N {
		t.Fatalf("reloaded block: %d entries %d rows, want %d/%d",
			gb.DictLen(), gb.N, ob.DictLen(), ob.N)
	}
	var buf2 bytes.Buffer
	if err := WriteTable(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("compressed table round trip is not byte-identical")
	}
}

// TestFootprintAccounting checks the resident-footprint report: compressed
// columns must account fewer resident bytes than their would-be-plain
// size, and plain columns must report the two as equal.
func TestFootprintAccounting(t *testing.T) {
	var comp, plain *Column
	withCompression(t, CompressOn, 1, blockzip.DefaultBudget, func() {
		comp = buildStrColumn(BlockRows / 4)
	})
	withCompression(t, CompressOff, 1, blockzip.DefaultBudget, func() {
		plain = buildStrColumn(BlockRows / 4)
	})
	cc, cp := comp.Footprint()
	pc, pp := plain.Footprint()
	if cc >= cp {
		t.Fatalf("compressed footprint %d not below plain %d", cc, cp)
	}
	if pc != pp {
		t.Fatalf("plain column footprint %d != would-be-plain %d", pc, pp)
	}
	if cp != pp {
		t.Fatalf("would-be-plain sizes differ: %d vs %d", cp, pp)
	}
}
