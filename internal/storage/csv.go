package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ocht/internal/strs"
	"ocht/internal/vec"
)

// CSVOptions tunes CSV import.
type CSVOptions struct {
	Comma      rune     // field separator; 0 = ','
	NullMarker string   // cell value treated as NULL (in addition to "")
	Header     bool     // first row holds column names
	Names      []string // column names when Header is false
}

// ReadCSV imports a CSV stream into a sealed table, inferring column
// types from the data: a column is int64 if every non-NULL cell parses as
// an integer, float64 if every cell parses as a number, else a
// dictionary-compressed string column. Columns containing empty cells (or
// the NullMarker) become nullable.
func ReadCSV(name string, r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = false
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("storage: csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("storage: csv: empty input")
	}
	var names []string
	if opts.Header {
		names = rows[0]
		rows = rows[1:]
	} else if opts.Names != nil {
		names = opts.Names
	} else {
		names = make([]string, len(rows[0]))
		for i := range names {
			names[i] = fmt.Sprintf("col%d", i)
		}
	}
	nCols := len(names)
	for ri, row := range rows {
		if len(row) != nCols {
			return nil, fmt.Errorf("storage: csv row %d has %d fields, want %d", ri+1, len(row), nCols)
		}
	}

	isNull := func(cell string) bool {
		return cell == "" || (opts.NullMarker != "" && cell == opts.NullMarker)
	}

	// Type inference pass.
	types := make([]vec.Type, nCols)
	nullable := make([]bool, nCols)
	for c := 0; c < nCols; c++ {
		allInt, allNum, any := true, true, false
		for _, row := range rows {
			cell := row[c]
			if isNull(cell) {
				nullable[c] = true
				continue
			}
			any = true
			if _, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64); err != nil {
				allInt = false
				if _, err := strconv.ParseFloat(strings.TrimSpace(cell), 64); err != nil {
					allNum = false
				}
			}
		}
		switch {
		case any && allInt:
			types[c] = vec.I64
		case any && allNum:
			types[c] = vec.F64
		default:
			types[c] = vec.Str
		}
	}

	cols := make([]*Column, nCols)
	for c := range cols {
		cols[c] = NewColumn(names[c], types[c], nullable[c])
	}
	for _, row := range rows {
		for c, cell := range row {
			if isNull(cell) {
				cols[c].AppendNull()
				continue
			}
			switch types[c] {
			case vec.I64:
				v, _ := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
				cols[c].AppendInt(v)
			case vec.F64:
				v, _ := strconv.ParseFloat(strings.TrimSpace(cell), 64)
				cols[c].AppendFloat(v)
			default:
				cols[c].AppendString(cell)
			}
		}
	}
	t := NewTable(name, cols...)
	t.Seal()
	return t, nil
}

// WriteCSV exports a table as CSV with a header row. NULLs render as the
// marker (empty when unset).
func WriteCSV(w io.Writer, t *Table, opts CSVOptions) error {
	cw := csv.NewWriter(w)
	if opts.Comma != 0 {
		cw.Comma = opts.Comma
	}
	names := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		names[i] = c.Name
	}
	if err := cw.Write(names); err != nil {
		return err
	}
	st := strs.NewStore(false)
	bufs := make([]*vec.Vector, len(t.Cols))
	for i, c := range t.Cols {
		bufs[i] = vec.New(c.Type, BlockRows)
	}
	nBlocks := 0
	if len(t.Cols) > 0 {
		nBlocks = t.Cols[0].Blocks()
	}
	record := make([]string, len(t.Cols))
	for b := 0; b < nBlocks; b++ {
		n := 0
		for i, c := range t.Cols {
			n = c.ScanBlock(b, bufs[i], st)
		}
		for r := 0; r < n; r++ {
			for i, c := range t.Cols {
				v := bufs[i]
				switch {
				case v.IsNull(r):
					record[i] = opts.NullMarker
				case c.Type == vec.Str:
					record[i] = st.Get(v.Str[r])
				case c.Type == vec.F64:
					record[i] = strconv.FormatFloat(v.F64[r], 'g', -1, 64)
				default:
					record[i] = strconv.FormatInt(v.Int64At(r), 10)
				}
			}
			if err := cw.Write(record); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
