package storage

import (
	"bytes"
	"strings"
	"testing"

	"ocht/internal/vec"
)

const sampleCSV = `region,amount,score,note
north,100,1.5,hello
south,200,2,world
east,,3.25,
west,400,4.5,bye
`

func TestReadCSVInference(t *testing.T) {
	tab, err := ReadCSV("t", strings.NewReader(sampleCSV), CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 4 {
		t.Fatalf("rows %d", tab.Rows())
	}
	if tab.Col("region").Type != vec.Str || tab.Col("region").Nullable {
		t.Error("region type")
	}
	if tab.Col("amount").Type != vec.I64 || !tab.Col("amount").Nullable {
		t.Error("amount must be nullable int64")
	}
	if tab.Col("score").Type != vec.F64 {
		t.Error("score must be float")
	}
	if tab.Col("note").Type != vec.Str || !tab.Col("note").Nullable {
		t.Error("note must be nullable string")
	}
	if d := tab.Col("amount").TotalDomain(); !d.Valid || d.Min != 100 || d.Max != 400 {
		t.Errorf("amount domain %v (zone maps must cover imported data)", d)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab, err := ReadCSV("t", strings.NewReader(sampleCSV), CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab, CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	tab2, err := ReadCSV("t2", strings.NewReader(buf.String()), CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteCSV(&buf2, tab2, CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestCSVNullMarker(t *testing.T) {
	in := "a|b\n1|NULL\nNULL|2\n"
	tab, err := ReadCSV("t", strings.NewReader(in), CSVOptions{Header: true, Comma: '|', NullMarker: "NULL"})
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Col("a").Nullable || !tab.Col("b").Nullable {
		t.Error("NULL marker columns must be nullable")
	}
	if tab.Col("a").Type != vec.I64 {
		t.Error("NULL cells must not force string typing")
	}
}

func TestCSVNoHeader(t *testing.T) {
	tab, err := ReadCSV("t", strings.NewReader("1,x\n2,y\n"), CSVOptions{Names: []string{"n", "s"}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Col("n").Type != vec.I64 || tab.Col("s").Type != vec.Str {
		t.Error("typed columns")
	}
	tab2, err := ReadCSV("t", strings.NewReader("1,x\n"), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tab2.ColIndex("col0") != 0 || tab2.ColIndex("col1") != 1 {
		t.Error("generated names")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1\n"), CSVOptions{Header: true}); err == nil {
		t.Error("ragged rows accepted")
	}
}
