// Fidelity of out-of-band metadata across persistence: a table written to
// disk and reloaded must drive the paper's machinery — DGPS domains from
// zone maps (Section II-A) and per-block dictionaries feeding the USSR
// (Section IV-A) — exactly like the in-memory original. These tests pin
// that contract, which the ingest seal/persist pipeline relies on.
package storage_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

// fidelityTable spans several blocks with skewed integer ranges (distinct
// zone maps per block), per-block string dictionaries and NULLs.
func fidelityTable(rows int) *storage.Table {
	k := storage.NewColumn("k", vec.I64, false)
	g := storage.NewColumn("g", vec.Str, false)
	v := storage.NewColumn("v", vec.I32, true)
	groups := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg"}
	for i := 0; i < rows; i++ {
		block := i / storage.BlockRows
		k.AppendInt(int64(i%1000) + int64(block)*100_000)
		g.AppendString(groups[(i+block)%len(groups)])
		if i%13 == 0 {
			v.AppendNull()
		} else {
			v.AppendInt(int64(i % 512))
		}
	}
	t := storage.NewTable("fidelity", k, g, v)
	t.Seal()
	return t
}

func reload(t *testing.T, tab *storage.Table) *storage.Table {
	t.Helper()
	var buf bytes.Buffer
	if err := storage.WriteTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	got, err := storage.ReadTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestZoneMapFidelity: every per-block and cumulative Domain() of the
// reloaded table matches the original, so DGPS width decisions are
// identical on freshly loaded data.
func TestZoneMapFidelity(t *testing.T) {
	orig := fidelityTable(storage.BlockRows*2 + 1234)
	got := reload(t, orig)

	for ci, oc := range orig.Cols {
		gc := got.Cols[ci]
		if oc.Blocks() != gc.Blocks() {
			t.Fatalf("col %s: %d blocks vs %d", oc.Name, gc.Blocks(), oc.Blocks())
		}
		for bi := 0; bi < oc.Blocks(); bi++ {
			od, gd := oc.Domain(bi, bi+1), gc.Domain(bi, bi+1)
			if od != gd {
				t.Errorf("col %s block %d: domain %+v vs %+v", oc.Name, bi, gd, od)
			}
		}
		if oc.TotalDomain() != gc.TotalDomain() {
			t.Errorf("col %s: total domain %+v vs %+v", oc.Name, gc.TotalDomain(), oc.TotalDomain())
		}
	}
}

// TestDictionaryFidelity: per-block dictionaries (contents and order, so
// codes stay valid) and the Table III candidate statistics survive the
// round trip.
func TestDictionaryFidelity(t *testing.T) {
	orig := fidelityTable(storage.BlockRows + 99)
	got := reload(t, orig)

	oc, gc := orig.Col("g"), got.Col("g")
	if oc.DictStats() != gc.DictStats() {
		t.Fatalf("dict stats %d vs %d", gc.DictStats(), oc.DictStats())
	}
	for bi := 0; bi < oc.Blocks(); bi++ {
		ob, gb := oc.Block(bi), gc.Block(bi)
		if !reflect.DeepEqual(ob.Dict, gb.Dict) {
			t.Fatalf("block %d dict mismatch: %v vs %v", bi, gb.Dict, ob.Dict)
		}
		if !reflect.DeepEqual(ob.Codes, gb.Codes) {
			t.Fatalf("block %d codes mismatch", bi)
		}
	}

	// Scans through a plain store materialize identical strings.
	so, sg := strs.NewStore(false), strs.NewStore(false)
	bo, bg := vec.New(vec.Str, storage.BlockRows), vec.New(vec.Str, storage.BlockRows)
	for bi := 0; bi < oc.Blocks(); bi++ {
		n := oc.ScanBlock(bi, bo, so)
		if m := gc.ScanBlock(bi, bg, sg); m != n {
			t.Fatalf("block %d rows %d vs %d", bi, m, n)
		}
		for i := 0; i < n; i++ {
			if so.Get(bo.Str[i]) != sg.Get(bg.Str[i]) {
				t.Fatalf("block %d row %d: %q vs %q", bi, i,
					sg.Get(bg.Str[i]), so.Get(bo.Str[i]))
			}
		}
	}
}

// TestCompressedLayoutFidelity runs the same compressed aggregation over
// the original and the reloaded table under full paper flags: results
// and the optimistically compressed hash-table footprint (i.e., the DGPS
// layout chosen from the derived domains) must be identical.
func TestCompressedLayoutFidelity(t *testing.T) {
	orig := fidelityTable(storage.BlockRows + 4567)
	got := reload(t, orig)

	run := func(tab *storage.Table) (*exec.Result, int, int) {
		qc := exec.NewQCtx(core.All())
		sc := exec.NewScan(tab, "g", "k", "v")
		m := sc.Meta()
		h := exec.NewHashAgg(sc,
			[]string{"g"}, []*exec.Expr{exec.Col(m, "g")},
			[]exec.AggExpr{
				{Func: agg.Sum, Arg: exec.Col(m, "k"), Name: "s"},
				{Func: agg.Count, Arg: exec.Col(m, "v"), Name: "c"},
			})
		res := exec.Run(qc, h)
		res.OrderBy(exec.SortKey{Col: 0})
		return res, qc.HashTableBytes(), qc.HashTableHotBytes()
	}
	ro, bo, ho := run(orig)
	rg, bg, hg := run(got)

	if fmt.Sprint(ro.Rows) != fmt.Sprint(rg.Rows) {
		t.Fatalf("results differ:\n%v\nvs\n%v", ro, rg)
	}
	if bo != bg || ho != hg {
		t.Fatalf("hash table layout differs: %d/%d bytes vs %d/%d", bg, hg, bo, ho)
	}
}
