package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ocht/internal/blockzip"
	"ocht/internal/vec"
)

// Binary table format. All integers little-endian.
//
//	magic "OCHT" | version u32
//	name len u32 | name bytes
//	column count u32
//	per column:
//	  name len u32 | name | type u8 | nullable u8 | block count u32
//	  per block:
//	    rows u32
//	    data:
//	      ints (version >= 2): enc u8; enc 0 = raw values at type width,
//	        enc 1 = bit-packed: min i64 | bits u8 | ceil(rows/(64/bits))
//	        x u64 words of frame-of-reference offsets
//	      ints (version 1): raw values at type width
//	      floats: raw values
//	      strings (version >= 3): strenc u8;
//	        strenc 0 = plain: dict count u32, per entry (len u32 | bytes),
//	          then rows x codes u32
//	        strenc 1 = compressed: blob len u32 | blockzip dictionary blob |
//	          code bits u8 | ceil(rows/(64/bits)) x u64 packed code words
//	      strings (version < 3): plain layout, no strenc byte
//	    nulls flag u8 [+ rows x u8]
//	footer (out-of-band metadata, Section II-A):
//	  per column, per block: zonemap valid u8 [+ min i64 + max i64]
//	magic "THCO"
const (
	fileMagic   = "OCHT"
	fileVersion = 3
	fileFooter  = "THCO"
)

// Block data encodings (version >= 2, integer columns).
const (
	blockEncPlain  = 0
	blockEncPacked = 1
)

// String block encodings (version >= 3, string columns).
const (
	strEncPlain      = 0
	strEncCompressed = 1
)

// WriteTable serializes a sealed table.
func WriteTable(w io.Writer, t *Table) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	put := func(v interface{}) error { return binary.Write(bw, binary.LittleEndian, v) }
	putStr := func(s string) error {
		if err := put(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	if err := put(uint32(fileVersion)); err != nil {
		return err
	}
	if err := putStr(t.Name); err != nil {
		return err
	}
	if err := put(uint32(len(t.Cols))); err != nil {
		return err
	}
	for _, c := range t.Cols {
		if c.cur != nil {
			return fmt.Errorf("storage: column %s not sealed", c.Name)
		}
		if err := putStr(c.Name); err != nil {
			return err
		}
		nullable := uint8(0)
		if c.Nullable {
			nullable = 1
		}
		if err := put(uint8(c.Type)); err != nil {
			return err
		}
		if err := put(nullable); err != nil {
			return err
		}
		if err := put(uint32(len(c.blocks))); err != nil {
			return err
		}
		for _, b := range c.blocks {
			if err := put(uint32(b.N)); err != nil {
				return err
			}
			if c.Type.IsInt() && b.Packed() {
				if err := put(uint8(blockEncPacked)); err != nil {
					return err
				}
				if err := put(b.PackMin); err != nil {
					return err
				}
				if err := put(uint8(b.PackBits)); err != nil {
					return err
				}
				if err := put(b.PackWords); err != nil {
					return err
				}
				if err := putNulls(put, b); err != nil {
					return err
				}
				continue
			}
			if c.Type.IsInt() {
				if err := put(uint8(blockEncPlain)); err != nil {
					return err
				}
			}
			switch c.Type {
			case vec.I8:
				if err := put(b.I8); err != nil {
					return err
				}
			case vec.I16:
				if err := put(b.I16); err != nil {
					return err
				}
			case vec.I32:
				if err := put(b.I32); err != nil {
					return err
				}
			case vec.I64:
				if err := put(b.I64); err != nil {
					return err
				}
			case vec.F64:
				if err := put(b.F64); err != nil {
					return err
				}
			case vec.Str:
				if b.DictCompressed() {
					if err := put(uint8(strEncCompressed)); err != nil {
						return err
					}
					blob := b.ZDict.Marshal()
					if err := put(uint32(len(blob))); err != nil {
						return err
					}
					if _, err := bw.Write(blob); err != nil {
						return err
					}
					if err := put(uint8(b.ZCodes.Bits)); err != nil {
						return err
					}
					if err := put(b.ZCodes.Words); err != nil {
						return err
					}
					break
				}
				if err := put(uint8(strEncPlain)); err != nil {
					return err
				}
				if err := put(uint32(len(b.Dict))); err != nil {
					return err
				}
				for _, s := range b.Dict {
					if err := putStr(s); err != nil {
						return err
					}
				}
				if err := put(b.Codes); err != nil {
					return err
				}
			}
			if err := putNulls(put, b); err != nil {
				return err
			}
		}
	}
	// Out-of-band zone maps in the footer, as the paper stores them.
	for _, c := range t.Cols {
		for _, z := range c.zones {
			valid := uint8(0)
			if z.valid {
				valid = 1
			}
			if err := put(valid); err != nil {
				return err
			}
			if z.valid {
				if err := put(z.min); err != nil {
					return err
				}
				if err := put(z.max); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString(fileFooter); err != nil {
		return err
	}
	return bw.Flush()
}

// putNulls writes a block's NULL-mask section.
func putNulls(put func(interface{}) error, b *Block) error {
	hasNulls := uint8(0)
	if b.Nulls != nil {
		hasNulls = 1
	}
	if err := put(hasNulls); err != nil {
		return err
	}
	if b.Nulls != nil {
		return put(b.Nulls)
	}
	return nil
}

// Sanity caps for ReadTable: a corrupted or truncated file must produce
// an error, never a panic or a multi-gigabyte allocation driven by a
// damaged length field. The caps are far above anything WriteTable emits.
const (
	maxFileStrLen    = 1 << 26 // 64 MiB per string
	maxFileCols      = 1 << 14
	maxFileBlocks    = 1 << 24
	maxBlockDictData = 1 << 28 // 256 MiB of dictionary strings per block
)

// ReadTable deserializes a table written by WriteTable. Damaged input —
// truncated streams, corrupted headers or footers, out-of-range lengths,
// dictionary codes past the dictionary — returns an error; ReadTable
// never panics, which the WAL-recovery path relies on when it loads the
// persisted block file underneath a log replay.
func ReadTable(r io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	get := func(v interface{}) error { return binary.Read(br, binary.LittleEndian, v) }
	getStr := func() (string, error) {
		var n uint32
		if err := get(&n); err != nil {
			return "", err
		}
		if n > maxFileStrLen {
			return "", fmt.Errorf("storage: string length %d exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("storage: bad magic %q", magic)
	}
	var version uint32
	if err := get(&version); err != nil {
		return nil, err
	}
	if version < 1 || version > fileVersion {
		return nil, fmt.Errorf("storage: unsupported version %d", version)
	}
	name, err := getStr()
	if err != nil {
		return nil, err
	}
	var nCols uint32
	if err := get(&nCols); err != nil {
		return nil, err
	}
	if nCols > maxFileCols {
		return nil, fmt.Errorf("storage: column count %d exceeds limit", nCols)
	}
	cols := make([]*Column, nCols)
	for ci := range cols {
		cname, err := getStr()
		if err != nil {
			return nil, err
		}
		var typ, nullable uint8
		if err := get(&typ); err != nil {
			return nil, err
		}
		switch vec.Type(typ) {
		case vec.I8, vec.I16, vec.I32, vec.I64, vec.F64, vec.Str:
		default:
			return nil, fmt.Errorf("storage: bad column type %d", typ)
		}
		if err := get(&nullable); err != nil {
			return nil, err
		}
		c := NewColumn(cname, vec.Type(typ), nullable == 1)
		var nBlocks uint32
		if err := get(&nBlocks); err != nil {
			return nil, err
		}
		if nBlocks > maxFileBlocks {
			return nil, fmt.Errorf("storage: block count %d exceeds limit", nBlocks)
		}
		for bi := uint32(0); bi < nBlocks; bi++ {
			var rows uint32
			if err := get(&rows); err != nil {
				return nil, err
			}
			if rows > BlockRows {
				return nil, fmt.Errorf("storage: block of %d rows exceeds BlockRows", rows)
			}
			b := &Block{N: int(rows)}
			enc := uint8(blockEncPlain)
			if version >= 2 && c.Type.IsInt() {
				if err := get(&enc); err != nil {
					return nil, err
				}
			}
			if enc == blockEncPacked {
				if err := readPackedBlock(get, b, c.Type, int(rows)); err != nil {
					return nil, err
				}
				if err := readNulls(get, b, int(rows)); err != nil {
					return nil, err
				}
				c.blocks = append(c.blocks, b)
				continue
			}
			if enc != blockEncPlain {
				return nil, fmt.Errorf("storage: bad block encoding %d", enc)
			}
			switch c.Type {
			case vec.I8:
				b.I8 = make([]int8, rows)
				err = get(b.I8)
			case vec.I16:
				b.I16 = make([]int16, rows)
				err = get(b.I16)
			case vec.I32:
				b.I32 = make([]int32, rows)
				err = get(b.I32)
			case vec.I64:
				b.I64 = make([]int64, rows)
				err = get(b.I64)
			case vec.F64:
				b.F64 = make([]float64, rows)
				err = get(b.F64)
			case vec.Str:
				strenc := uint8(strEncPlain)
				if version >= 3 {
					if err = get(&strenc); err != nil {
						break
					}
				}
				if strenc == strEncCompressed {
					err = readCompressedStrBlock(br, get, b, int(rows))
					break
				}
				if strenc != strEncPlain {
					err = fmt.Errorf("storage: bad string block encoding %d", strenc)
					break
				}
				var nDict uint32
				if err = get(&nDict); err != nil {
					break
				}
				if nDict > BlockRows {
					err = fmt.Errorf("storage: dictionary of %d entries exceeds BlockRows", nDict)
					break
				}
				b.Dict = make([]string, nDict)
				dictBytes := 0
				for di := range b.Dict {
					if b.Dict[di], err = getStr(); err != nil {
						break
					}
					if dictBytes += len(b.Dict[di]); dictBytes > maxBlockDictData {
						err = fmt.Errorf("storage: block dictionary exceeds %d bytes", maxBlockDictData)
						break
					}
				}
				if err == nil {
					b.Codes = make([]int32, rows)
					if err = get(b.Codes); err == nil {
						for _, code := range b.Codes {
							if code < 0 || int(code) >= len(b.Dict) {
								err = fmt.Errorf("storage: dictionary code %d out of range [0,%d)", code, len(b.Dict))
								break
							}
						}
					}
				}
			default:
				err = fmt.Errorf("storage: bad column type %d", typ)
			}
			if err != nil {
				return nil, err
			}
			if err := readNulls(get, b, int(rows)); err != nil {
				return nil, err
			}
			c.blocks = append(c.blocks, b)
		}
		cols[ci] = c
	}
	// Footer: zone maps. An inverted zone (min > max) can only come from
	// corruption and would silently mis-skip blocks under pushdown, so it
	// is rejected here rather than trusted.
	for _, c := range cols {
		c.zones = make([]zoneMap, len(c.blocks))
		for zi := range c.zones {
			var valid uint8
			if err := get(&valid); err != nil {
				return nil, err
			}
			if valid > 1 {
				return nil, fmt.Errorf("storage: bad zone-map flag %d", valid)
			}
			if valid == 1 {
				var z zoneMap
				z.valid = true
				if err := get(&z.min); err != nil {
					return nil, err
				}
				if err := get(&z.max); err != nil {
					return nil, err
				}
				if z.min > z.max {
					return nil, fmt.Errorf("storage: inverted zone map [%d, %d]", z.min, z.max)
				}
				c.zones[zi] = z
			}
		}
	}
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != fileFooter {
		return nil, fmt.Errorf("storage: bad footer %q", magic)
	}
	return NewTable(name, cols...), nil
}

// readPackedBlock decodes a bit-packed integer block, validating the pack
// header so damaged files error instead of panicking or over-allocating:
// the bit width must be in [1, 63] and narrow enough that packing actually
// beats the plain layout WriteTable would otherwise have chosen.
func readPackedBlock(get func(interface{}) error, b *Block, t vec.Type, rows int) error {
	if rows == 0 {
		return fmt.Errorf("storage: packed block with 0 rows")
	}
	var min int64
	var bits uint8
	if err := get(&min); err != nil {
		return err
	}
	if err := get(&bits); err != nil {
		return err
	}
	if bits < 1 || bits > 63 {
		return fmt.Errorf("storage: packed block bit width %d out of range", bits)
	}
	per := 64 / int(bits)
	words := (rows + per - 1) / per
	if words*8 >= rows*t.Width() {
		return fmt.Errorf("storage: packed block wider than plain (%d bits for %s)", bits, t)
	}
	b.PackWords = make([]uint64, words)
	b.PackBits = int(bits)
	b.PackMin = min
	return get(b.PackWords)
}

// readCompressedStrBlock decodes a v3 compressed string block: a marshaled
// blockzip dictionary blob plus a bit-packed code column. Every field is
// validated — the blob through blockzip.Unmarshal's structural check, the
// bit width against the packable range, every code against the dictionary
// length — so damaged files error here instead of panicking later in the
// scan path.
func readCompressedStrBlock(br *bufio.Reader, get func(interface{}) error, b *Block, rows int) error {
	if rows == 0 {
		return fmt.Errorf("storage: compressed string block with 0 rows")
	}
	var blobLen uint32
	if err := get(&blobLen); err != nil {
		return err
	}
	if blobLen > maxBlockDictData {
		return fmt.Errorf("storage: compressed dictionary of %d bytes exceeds limit", blobLen)
	}
	blob := make([]byte, blobLen)
	if _, err := io.ReadFull(br, blob); err != nil {
		return err
	}
	d, err := blockzip.Unmarshal(blob)
	if err != nil {
		return fmt.Errorf("storage: compressed dictionary: %w", err)
	}
	var bits uint8
	if err := get(&bits); err != nil {
		return err
	}
	if bits < 1 || bits > 32 {
		return fmt.Errorf("storage: code bit width %d out of range", bits)
	}
	codes := blockzip.PackedU32{
		Bits:  int(bits),
		N:     rows,
		Words: make([]uint64, blockzip.WordsFor(rows, int(bits))),
	}
	if err := get(codes.Words); err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		if int(codes.At(i)) >= d.Len() {
			return fmt.Errorf("storage: dictionary code %d out of range [0,%d)", codes.At(i), d.Len())
		}
	}
	b.ZDict = d
	b.ZCodes = codes
	return nil
}

// readNulls decodes a block's NULL-mask section.
func readNulls(get func(interface{}) error, b *Block, rows int) error {
	var hasNulls uint8
	if err := get(&hasNulls); err != nil {
		return err
	}
	switch hasNulls {
	case 0:
		return nil
	case 1:
		b.Nulls = make([]bool, rows)
		return get(b.Nulls)
	default:
		return fmt.Errorf("storage: bad null flag %d", hasNulls)
	}
}

// SaveCatalog writes every table to <dir>/<table>.ocht.
func (c *Catalog) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range c.Names() {
		t, ok := c.TableOK(name)
		if !ok {
			continue
		}
		f, err := os.Create(filepath.Join(dir, name+".ocht"))
		if err != nil {
			return err
		}
		if err := WriteTable(f, t); err != nil {
			_ = f.Close() // the write error is already being returned
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadCatalog reads every *.ocht file in dir into a new catalog.
func LoadCatalog(dir string) (*Catalog, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".ocht" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	cat := NewCatalog()
	for _, n := range names {
		f, err := os.Open(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		t, err := ReadTable(f)
		_ = f.Close() // read-only descriptor; ReadTable's error is the signal
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n, err)
		}
		cat.Add(t)
	}
	return cat, nil
}
