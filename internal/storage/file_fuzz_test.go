package storage

import (
	"bytes"
	"fmt"
	"testing"

	"ocht/internal/strs"
	"ocht/internal/vec"
)

// fuzzSeedTable builds a small mixed-type table exercising every column
// kind the file format serializes: narrow ints sealed as bit-packed
// blocks, wide ints kept plain, floats, strings with per-block
// dictionaries (one plain, one sealed compressed), NULL bitmaps, and zone
// maps for all of them.
func fuzzSeedTable() *Table {
	a := NewColumn("a", vec.I64, false)
	b := NewColumn("b", vec.F64, true)
	c := NewColumn("c", vec.Str, true)
	d := NewColumn("d", vec.I64, false) // range > 2^56: stays plain
	e := NewColumn("e", vec.I32, true)  // packed with a NULL bitmap
	z := NewColumn("z", vec.Str, true)  // sealed with a compressed dictionary
	for i := 0; i < 300; i++ {
		if i%13 == 0 {
			z.AppendNull()
		} else {
			z.AppendString(fmt.Sprintf("customer comment %d: pending deposits %d", i%120, i%7))
		}
	}
	// Seal z alone under forced compression so the format's compressed
	// string-block layout (strenc 1) is in every fuzz seed; the remaining
	// columns seal under the default policy and keep c's dictionary plain.
	mode := SealCompression()
	SetSealCompression(CompressOn)
	SetCompressMinRows(1)
	z.Seal()
	SetSealCompression(mode)
	SetCompressMinRows(4096)
	if !z.Block(0).DictCompressed() {
		panic("fuzz seed: column z did not seal compressed")
	}
	for i := 0; i < 300; i++ {
		a.AppendInt(int64(i * 7 % 1000))
		if i%11 == 0 {
			b.AppendNull()
		} else {
			b.AppendFloat(float64(i) / 3)
		}
		switch i % 5 {
		case 0:
			c.AppendNull()
		case 1:
			c.AppendString("alpha")
		default:
			c.AppendString("beta")
		}
		d.AppendInt(int64(i) << 57)
		if i%7 == 0 {
			e.AppendNull()
		} else {
			e.AppendInt(int64(i%19 - 9))
		}
	}
	t := NewTable("fuzz", a, b, c, d, e, z)
	t.Seal()
	return t
}

// FuzzTableFile round-trips the binary table format and feeds ReadTable
// mutated, truncated, and corrupted inputs. The invariant under fuzzing
// is "fail loudly, never panic": the WAL-recovery path loads the
// persisted block file with ReadTable and must get an error — not a
// crash and not an unbounded allocation — from any damaged file.
func FuzzTableFile(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteTable(&buf, fuzzSeedTable()); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	// Truncated header, truncated mid-body, truncated footer.
	f.Add(good[:2])
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-3])
	// Corrupted magic, corrupted length field, corrupted footer magic.
	for _, at := range []int{0, 4, 8, len(good) - 2} {
		bad := append([]byte(nil), good...)
		bad[at] ^= 0xff
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte("OCHT"))
	// Byte flips spread across the whole file guide the fuzzer into the
	// v2 per-block structures: encoding tags, packed min/bits headers,
	// dictionary lengths, and the zone-map footer.
	for at := 12; at < len(good); at += 37 {
		bad := append([]byte(nil), good...)
		bad[at] ^= 0x81
		f.Add(bad)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := ReadTable(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must also scan (both the decompressing and the
		// zero-copy view path) and re-serialize without panics.
		exerciseTable(tab)
		var rt bytes.Buffer
		if err := WriteTable(&rt, tab); err != nil {
			t.Fatalf("re-serialize parsed table: %v", err)
		}
	})
}

// exerciseTable drives every read path over a parsed table: eager block
// decompression, encoded block views (dictionary interning included),
// point string access through the compressed-dictionary bucket decode, and
// zone-map access — the full surface a scan touches after WAL recovery.
func exerciseTable(tab *Table) {
	st := strs.NewStore(false)
	out := &vec.Vector{}
	var refs []vec.StrRef
	var scratch []byte
	for _, c := range tab.Cols {
		buf := vec.New(c.Type, BlockRows)
		if c.Nullable {
			buf.Nulls = make([]bool, BlockRows)
		}
		for bi := 0; bi < c.Blocks(); bi++ {
			c.ScanBlock(bi, buf, st)
			_, refs, _ = c.ViewBlock(bi, out, st, refs)
			if c.Type == vec.Str {
				n := c.Block(bi).N
				for _, row := range []int{0, n / 2, n - 1} {
					if row >= 0 && row < n {
						_, _, scratch = c.StrAt(bi, row, scratch)
					}
				}
			}
			c.Zone(bi)
		}
		c.TotalDomain()
	}
}

// TestReadTableRoundTrip is the deterministic core of the fuzz target:
// a write-read round trip preserves schema, rows, and zone maps.
func TestReadTableRoundTrip(t *testing.T) {
	orig := fuzzSeedTable()
	var buf bytes.Buffer
	if err := WriteTable(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != orig.Rows() || len(got.Cols) != len(orig.Cols) {
		t.Fatalf("round trip: %d rows %d cols, want %d rows %d cols",
			got.Rows(), len(got.Cols), orig.Rows(), len(orig.Cols))
	}
	var buf2 bytes.Buffer
	if err := WriteTable(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("round trip is not byte-identical")
	}
}

// TestReadTableCorruption checks that specific damage classes error
// cleanly: truncation at every prefix length of a small file, plus a
// single-bit flip at every offset. (The fuzzer explores far more; this
// keeps the guarantee under plain `go test`.)
func TestReadTableCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable(&buf, fuzzSeedTable()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for n := 0; n < len(good); n += 97 {
		if _, err := ReadTable(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncation to %d bytes: expected error", n)
		}
	}
	// Flip every byte three ways. A flip may land in string payload bytes
	// and still parse; the requirement is only that neither parsing nor the
	// subsequent block reads (decompression, encoded views, zone maps)
	// panic — packed-block headers, dictionary lengths and zone footers all
	// live somewhere in this sweep.
	for at := 0; at < len(good); at++ {
		for _, mut := range []byte{good[at] ^ 0x40, 0x00, 0xff} {
			bad := append([]byte(nil), good...)
			bad[at] = mut
			tab, err := ReadTable(bytes.NewReader(bad))
			if err != nil {
				continue
			}
			exerciseTable(tab)
		}
	}
}
