package storage

import (
	"bytes"
	"testing"

	"ocht/internal/strs"
	"ocht/internal/vec"
)

// fuzzSeedTable builds a small mixed-type table exercising every column
// kind the file format serializes: ints with zone maps, floats, strings
// with per-block dictionaries, and NULL bitmaps.
func fuzzSeedTable() *Table {
	a := NewColumn("a", vec.I64, false)
	b := NewColumn("b", vec.F64, true)
	c := NewColumn("c", vec.Str, true)
	for i := 0; i < 300; i++ {
		a.AppendInt(int64(i * 7 % 1000))
		if i%11 == 0 {
			b.AppendNull()
		} else {
			b.AppendFloat(float64(i) / 3)
		}
		switch i % 5 {
		case 0:
			c.AppendNull()
		case 1:
			c.AppendString("alpha")
		default:
			c.AppendString("beta")
		}
	}
	t := NewTable("fuzz", a, b, c)
	t.Seal()
	return t
}

// FuzzTableFile round-trips the binary table format and feeds ReadTable
// mutated, truncated, and corrupted inputs. The invariant under fuzzing
// is "fail loudly, never panic": the WAL-recovery path loads the
// persisted block file with ReadTable and must get an error — not a
// crash and not an unbounded allocation — from any damaged file.
func FuzzTableFile(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteTable(&buf, fuzzSeedTable()); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	// Truncated header, truncated mid-body, truncated footer.
	f.Add(good[:2])
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-3])
	// Corrupted magic, corrupted length field, corrupted footer magic.
	for _, at := range []int{0, 4, 8, len(good) - 2} {
		bad := append([]byte(nil), good...)
		bad[at] ^= 0xff
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte("OCHT"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := ReadTable(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must also scan and re-serialize without panics.
		st := strs.NewStore(false)
		for _, c := range tab.Cols {
			out := vec.New(c.Type, BlockRows)
			if c.Nullable {
				out.Nulls = make([]bool, BlockRows)
			}
			for bi := 0; bi < c.Blocks(); bi++ {
				c.ScanBlock(bi, out, st)
			}
			c.TotalDomain()
		}
		var rt bytes.Buffer
		if err := WriteTable(&rt, tab); err != nil {
			t.Fatalf("re-serialize parsed table: %v", err)
		}
	})
}

// TestReadTableRoundTrip is the deterministic core of the fuzz target:
// a write-read round trip preserves schema, rows, and zone maps.
func TestReadTableRoundTrip(t *testing.T) {
	orig := fuzzSeedTable()
	var buf bytes.Buffer
	if err := WriteTable(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != orig.Rows() || len(got.Cols) != len(orig.Cols) {
		t.Fatalf("round trip: %d rows %d cols, want %d rows %d cols",
			got.Rows(), len(got.Cols), orig.Rows(), len(orig.Cols))
	}
	var buf2 bytes.Buffer
	if err := WriteTable(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("round trip is not byte-identical")
	}
}

// TestReadTableCorruption checks that specific damage classes error
// cleanly: truncation at every prefix length of a small file, plus a
// single-bit flip at every offset. (The fuzzer explores far more; this
// keeps the guarantee under plain `go test`.)
func TestReadTableCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable(&buf, fuzzSeedTable()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for n := 0; n < len(good); n += 97 {
		if _, err := ReadTable(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncation to %d bytes: expected error", n)
		}
	}
	for at := 0; at < len(good); at += 131 {
		bad := append([]byte(nil), good...)
		bad[at] ^= 0x40
		// A flip may land in string payload bytes and still parse; the
		// requirement is only that it never panics.
		tab, err := ReadTable(bytes.NewReader(bad))
		_ = tab
		_ = err
	}
}
