package storage

import (
	"bytes"
	"fmt"
	"testing"

	"ocht/internal/strs"
	"ocht/internal/vec"
)

func buildMixedTable(t *testing.T) *Table {
	t.Helper()
	a := NewColumn("a", vec.I64, false)
	b := NewColumn("b", vec.I32, true)
	s := NewColumn("s", vec.Str, true)
	f := NewColumn("f", vec.F64, false)
	for i := 0; i < BlockRows+500; i++ { // two blocks
		a.AppendInt(int64(i) - 100)
		if i%11 == 0 {
			b.AppendNull()
		} else {
			b.AppendInt(int64(i % 1000))
		}
		if i%13 == 0 {
			s.AppendNull()
		} else {
			s.AppendString(fmt.Sprintf("w%d", i%200))
		}
		f.AppendFloat(float64(i) * 0.5)
	}
	tab := NewTable("mixed", a, b, s, f)
	tab.Seal()
	return tab
}

func TestTableRoundTrip(t *testing.T) {
	orig := buildMixedTable(t)
	var buf bytes.Buffer
	if err := WriteTable(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "mixed" || len(got.Cols) != 4 || got.Rows() != orig.Rows() {
		t.Fatalf("shape: %s %d cols %d rows", got.Name, len(got.Cols), got.Rows())
	}
	// Zone maps must survive (they live in the out-of-band footer).
	if got.Col("a").TotalDomain() != orig.Col("a").TotalDomain() {
		t.Errorf("zonemaps lost: %v vs %v",
			got.Col("a").TotalDomain(), orig.Col("a").TotalDomain())
	}
	// Value-level comparison across all columns and blocks.
	st := strs.NewStore(false)
	for ci, oc := range orig.Cols {
		gc := got.Cols[ci]
		if gc.Blocks() != oc.Blocks() {
			t.Fatalf("col %s blocks %d vs %d", oc.Name, gc.Blocks(), oc.Blocks())
		}
		ob := vec.New(oc.Type, BlockRows)
		gb := vec.New(oc.Type, BlockRows)
		for bi := 0; bi < oc.Blocks(); bi++ {
			n1 := oc.ScanBlock(bi, ob, st)
			n2 := gc.ScanBlock(bi, gb, st)
			if n1 != n2 {
				t.Fatalf("col %s block %d rows %d vs %d", oc.Name, bi, n1, n2)
			}
			for i := 0; i < n1; i++ {
				if ob.IsNull(i) != gb.IsNull(i) {
					t.Fatalf("col %s row %d null mismatch", oc.Name, i)
				}
				if ob.IsNull(i) {
					continue
				}
				var same bool
				switch oc.Type {
				case vec.Str:
					same = st.Get(ob.Str[i]) == st.Get(gb.Str[i])
				case vec.F64:
					same = ob.F64[i] == gb.F64[i]
				default:
					same = ob.Int64At(i) == gb.Int64At(i)
				}
				if !same {
					t.Fatalf("col %s block %d row %d differs", oc.Name, bi, i)
				}
			}
		}
	}
}

func TestCatalogSaveLoad(t *testing.T) {
	dir := t.TempDir()
	cat := NewCatalog()
	cat.Add(buildMixedTable(t))
	small := NewColumn("x", vec.I64, false)
	small.AppendInt(42)
	st2 := NewTable("tiny", small)
	st2.Seal()
	cat.Add(st2)

	if err := cat.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Tables() != 2 {
		t.Fatalf("tables: %d", loaded.Tables())
	}
	if loaded.Table("tiny").Rows() != 1 || loaded.Table("mixed").Rows() != BlockRows+500 {
		t.Error("row counts after reload")
	}
}

func TestReadTableRejectsGarbage(t *testing.T) {
	if _, err := ReadTable(bytes.NewReader([]byte("not a table"))); err == nil {
		t.Error("garbage accepted")
	}
	// Truncated file.
	orig := buildMixedTable(t)
	var buf bytes.Buffer
	if err := WriteTable(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTable(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestWriteUnsealedFails(t *testing.T) {
	c := NewColumn("x", vec.I64, false)
	c.AppendInt(1) // not sealed
	tab := &Table{Name: "t", Cols: []*Column{c}}
	var buf bytes.Buffer
	if err := WriteTable(&buf, tab); err == nil {
		t.Error("unsealed table accepted")
	}
}
