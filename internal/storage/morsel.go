package storage

import (
	"sync/atomic"

	"ocht/internal/strs"
	"ocht/internal/vec"
)

// MorselQueue hands out block-aligned morsels of a table to a set of
// worker goroutines. A morsel is one sealed block (BlockRows rows): large
// enough to amortize dispatch, small enough that workers load-balance over
// skewed pipelines, and — because blocks are the dictionary/zone-map
// granularity — scans never straddle a block boundary, so per-block
// dictionary setup stays identical to the serial path.
//
// The queue is a set of contiguous block ranges, each with its own atomic
// claim cursor. A plain queue (NewMorselQueue) has one range shared by all
// callers, exactly the old single-counter behavior. An affinity queue
// (NewMorselQueueAffinity) has one range per worker: NextFor(w) drains
// worker w's own range first — so consecutive morsels of one worker are
// physically adjacent blocks, keeping dictionary and zone-map state warm
// in that core's cache — and steals from the most-loaded other range only
// when its own is empty, which preserves work conservation under skew.
// Claims are wait-free: a cursor only moves forward, and an overshoot past
// the range end simply reads as exhausted.
type MorselQueue struct {
	ranges []morselRange
}

// morselRange is one claimable block range [cursor, hi). The padding keeps
// each cursor on its own cache line so workers draining their own ranges
// never false-share.
type morselRange struct {
	next atomic.Int64
	hi   int64
	_    [48]byte
}

// NewMorselQueue creates a queue over block indices [0, blocks) with a
// single shared range.
func NewMorselQueue(blocks int) *MorselQueue {
	return NewMorselQueueRange(0, blocks)
}

// NewMorselQueueRange creates a single-range queue over block indices
// [lo, hi). Range queues give each worker a contiguous slab of the table,
// which keeps the concatenation of per-worker outputs in serial row order
// — required when the parallel pipeline has no aggregation frontier to
// merge under.
func NewMorselQueueRange(lo, hi int) *MorselQueue {
	q := &MorselQueue{ranges: make([]morselRange, 1)}
	q.ranges[0].hi = int64(hi)
	q.ranges[0].next.Store(int64(lo))
	return q
}

// NewMorselQueueAffinity creates a queue over [0, blocks) split into one
// contiguous range per worker. Worker w claims from range w via NextFor
// and steals from other ranges when its own runs dry.
func NewMorselQueueAffinity(blocks, workers int) *MorselQueue {
	if workers < 1 {
		workers = 1
	}
	if workers > blocks && blocks > 0 {
		workers = blocks
	}
	q := &MorselQueue{ranges: make([]morselRange, workers)}
	for w := 0; w < workers; w++ {
		lo, hi := w*blocks/workers, (w+1)*blocks/workers
		q.ranges[w].next.Store(int64(lo))
		q.ranges[w].hi = int64(hi)
	}
	return q
}

// Next claims the next unclaimed block index; ok is false when the table
// is exhausted. Equivalent to NextFor(0).
func (q *MorselQueue) Next() (bi int, ok bool) { return q.NextFor(0) }

// NextFor claims the next block for worker w: from w's own range while it
// lasts, then from whichever other range has the most unclaimed blocks
// (steal-on-empty). ok is false only when every range is exhausted.
func (q *MorselQueue) NextFor(w int) (bi int, ok bool) {
	if len(q.ranges) == 0 {
		return 0, false
	}
	own := w % len(q.ranges)
	if bi, ok = q.ranges[own].claim(); ok {
		return bi, true
	}
	for {
		victim, best := -1, int64(0)
		for i := range q.ranges {
			if i == own {
				continue
			}
			if left := q.ranges[i].remaining(); left > best {
				victim, best = i, left
			}
		}
		if victim < 0 {
			return 0, false
		}
		if bi, ok = q.ranges[victim].claim(); ok {
			return bi, true
		}
		// Lost the race for the victim's last blocks; rescan.
	}
}

func (r *morselRange) claim() (int, bool) {
	// Opportunistic read first: keeps exhausted ranges read-only so
	// repeated steal scans do not bounce their cache lines.
	if r.next.Load() >= r.hi {
		return 0, false
	}
	n := r.next.Add(1) - 1
	if n >= r.hi {
		return 0, false
	}
	return int(n), true
}

func (r *morselRange) remaining() int64 {
	left := r.hi - r.next.Load()
	if left < 0 {
		return 0
	}
	return left
}

// Blocks returns the total number of morsels the queue dispenses.
func (q *MorselQueue) Blocks() int {
	n := int64(0)
	for i := range q.ranges {
		if q.ranges[i].hi > n {
			n = q.ranges[i].hi
		}
	}
	return int(n)
}

// Morsels returns a queue over all sealed blocks of the table. Every
// column of a table has the same block boundaries, so one queue drives a
// multi-column scan.
func (t *Table) Morsels() *MorselQueue {
	if len(t.Cols) == 0 {
		return NewMorselQueue(0)
	}
	return NewMorselQueue(t.Cols[0].Blocks())
}

// MorselsFor returns an affinity queue over all sealed blocks of the
// table, split into one contiguous range per worker (see
// NewMorselQueueAffinity).
func (t *Table) MorselsFor(workers int) *MorselQueue {
	if len(t.Cols) == 0 {
		return NewMorselQueue(0)
	}
	return NewMorselQueueAffinity(t.Cols[0].Blocks(), workers)
}

// WarmDictionaries inserts every per-block dictionary string of the column
// into the store's USSR (no heap fallback — rejected strings simply stay
// dictionary-only). The parallel executor runs this single-threaded before
// freezing the USSR, so that the parallel scans' ScanBlock interning
// resolves by lookup against a read-only region — the paper's "the scan
// inserts all dictionary strings into the USSR" (Section IV-D) hoisted
// into a warmup pass.
func (c *Column) WarmDictionaries(st *strs.Store) {
	if c.Type != vec.Str {
		return
	}
	for _, b := range c.blocks {
		if b.DictCompressed() {
			b.ZDict.ForEach(func(_ int, s []byte) { st.Warm(string(s)) })
			continue
		}
		for _, s := range b.Dict {
			st.Warm(s)
		}
	}
}
