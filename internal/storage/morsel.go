package storage

import (
	"sync/atomic"

	"ocht/internal/strs"
	"ocht/internal/vec"
)

// MorselQueue hands out block-aligned morsels of a table to a set of
// worker goroutines. A morsel is one sealed block (BlockRows rows): large
// enough to amortize dispatch, small enough that workers load-balance over
// skewed pipelines, and — because blocks are the dictionary/zone-map
// granularity — scans never straddle a block boundary, so per-block
// dictionary setup stays identical to the serial path.
//
// The queue is a single atomic counter over block indices; Next is
// wait-free and safe for any number of concurrent callers.
type MorselQueue struct {
	next   atomic.Int64
	blocks int64
}

// NewMorselQueue creates a queue over block indices [0, blocks).
func NewMorselQueue(blocks int) *MorselQueue {
	return &MorselQueue{blocks: int64(blocks)}
}

// NewMorselQueueRange creates a queue over block indices [lo, hi). Range
// queues give each worker a contiguous slab of the table, which keeps the
// concatenation of per-worker outputs in serial row order — required when
// the parallel pipeline has no aggregation frontier to merge under.
func NewMorselQueueRange(lo, hi int) *MorselQueue {
	q := &MorselQueue{blocks: int64(hi)}
	q.next.Store(int64(lo))
	return q
}

// Next claims the next unclaimed block index; ok is false when the table
// is exhausted.
func (q *MorselQueue) Next() (bi int, ok bool) {
	n := q.next.Add(1) - 1
	if n >= q.blocks {
		return 0, false
	}
	return int(n), true
}

// Blocks returns the total number of morsels the queue dispenses.
func (q *MorselQueue) Blocks() int { return int(q.blocks) }

// Morsels returns a queue over all sealed blocks of the table. Every
// column of a table has the same block boundaries, so one queue drives a
// multi-column scan.
func (t *Table) Morsels() *MorselQueue {
	if len(t.Cols) == 0 {
		return NewMorselQueue(0)
	}
	return NewMorselQueue(t.Cols[0].Blocks())
}

// WarmDictionaries inserts every per-block dictionary string of the column
// into the store's USSR (no heap fallback — rejected strings simply stay
// dictionary-only). The parallel executor runs this single-threaded before
// freezing the USSR, so that the parallel scans' ScanBlock interning
// resolves by lookup against a read-only region — the paper's "the scan
// inserts all dictionary strings into the USSR" (Section IV-D) hoisted
// into a warmup pass.
func (c *Column) WarmDictionaries(st *strs.Store) {
	if c.Type != vec.Str {
		return
	}
	for _, b := range c.blocks {
		if b.DictCompressed() {
			b.ZDict.ForEach(func(_ int, s []byte) { st.Warm(string(s)) })
			continue
		}
		for _, s := range b.Dict {
			st.Warm(s)
		}
	}
}
