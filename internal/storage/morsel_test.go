package storage

import (
	"sync"
	"testing"

	"ocht/internal/vec"
)

func TestMorselQueueSequential(t *testing.T) {
	q := NewMorselQueue(3)
	for want := 0; want < 3; want++ {
		bi, ok := q.Next()
		if !ok || bi != want {
			t.Fatalf("Next = %d,%v want %d,true", bi, ok, want)
		}
	}
	if _, ok := q.Next(); ok {
		t.Fatal("exhausted queue must return ok=false")
	}
	if _, ok := q.Next(); ok {
		t.Fatal("exhausted queue must stay exhausted")
	}
}

func TestMorselQueueRange(t *testing.T) {
	q := NewMorselQueueRange(2, 5)
	var got []int
	for {
		bi, ok := q.Next()
		if !ok {
			break
		}
		got = append(got, bi)
	}
	if len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("range queue dispensed %v", got)
	}
	if NewMorselQueueRange(4, 4).Blocks() != 4 {
		t.Error("Blocks of empty range")
	}
	if _, ok := NewMorselQueueRange(4, 4).Next(); ok {
		t.Error("empty range must be exhausted")
	}
}

// TestMorselQueueConcurrent claims blocks from many goroutines and checks
// every block is handed out exactly once.
func TestMorselQueueConcurrent(t *testing.T) {
	const blocks, workers = 1000, 8
	q := NewMorselQueue(blocks)
	var mu sync.Mutex
	seen := make([]int, blocks)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []int
			for {
				bi, ok := q.Next()
				if !ok {
					break
				}
				mine = append(mine, bi)
			}
			mu.Lock()
			for _, bi := range mine {
				seen[bi]++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for bi, n := range seen {
		if n != 1 {
			t.Fatalf("block %d claimed %d times", bi, n)
		}
	}
}

func TestTableMorselsCoverAllBlocks(t *testing.T) {
	c := NewColumn("x", vec.I64, false)
	for i := 0; i < BlockRows*2+10; i++ {
		c.AppendInt(int64(i))
	}
	tab := NewTable("t", c)
	tab.Seal()
	q := tab.Morsels()
	if q.Blocks() != c.Blocks() {
		t.Fatalf("queue over %d blocks, column has %d", q.Blocks(), c.Blocks())
	}
	n := 0
	for {
		if _, ok := q.Next(); !ok {
			break
		}
		n++
	}
	if n != c.Blocks() {
		t.Fatalf("dispensed %d blocks, want %d", n, c.Blocks())
	}
}
