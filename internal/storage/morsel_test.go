package storage

import (
	"sync"
	"testing"

	"ocht/internal/vec"
)

func TestMorselQueueSequential(t *testing.T) {
	q := NewMorselQueue(3)
	for want := 0; want < 3; want++ {
		bi, ok := q.Next()
		if !ok || bi != want {
			t.Fatalf("Next = %d,%v want %d,true", bi, ok, want)
		}
	}
	if _, ok := q.Next(); ok {
		t.Fatal("exhausted queue must return ok=false")
	}
	if _, ok := q.Next(); ok {
		t.Fatal("exhausted queue must stay exhausted")
	}
}

func TestMorselQueueRange(t *testing.T) {
	q := NewMorselQueueRange(2, 5)
	var got []int
	for {
		bi, ok := q.Next()
		if !ok {
			break
		}
		got = append(got, bi)
	}
	if len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("range queue dispensed %v", got)
	}
	if NewMorselQueueRange(4, 4).Blocks() != 4 {
		t.Error("Blocks of empty range")
	}
	if _, ok := NewMorselQueueRange(4, 4).Next(); ok {
		t.Error("empty range must be exhausted")
	}
}

// TestMorselQueueConcurrent claims blocks from many goroutines and checks
// every block is handed out exactly once.
func TestMorselQueueConcurrent(t *testing.T) {
	const blocks, workers = 1000, 8
	q := NewMorselQueue(blocks)
	var mu sync.Mutex
	seen := make([]int, blocks)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []int
			for {
				bi, ok := q.Next()
				if !ok {
					break
				}
				mine = append(mine, bi)
			}
			mu.Lock()
			for _, bi := range mine {
				seen[bi]++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for bi, n := range seen {
		if n != 1 {
			t.Fatalf("block %d claimed %d times", bi, n)
		}
	}
}

func TestTableMorselsCoverAllBlocks(t *testing.T) {
	c := NewColumn("x", vec.I64, false)
	for i := 0; i < BlockRows*2+10; i++ {
		c.AppendInt(int64(i))
	}
	tab := NewTable("t", c)
	tab.Seal()
	q := tab.Morsels()
	if q.Blocks() != c.Blocks() {
		t.Fatalf("queue over %d blocks, column has %d", q.Blocks(), c.Blocks())
	}
	n := 0
	for {
		if _, ok := q.Next(); !ok {
			break
		}
		n++
	}
	if n != c.Blocks() {
		t.Fatalf("dispensed %d blocks, want %d", n, c.Blocks())
	}
}

// TestMorselQueueAffinityOwnRangeFirst checks that each worker drains its
// own contiguous range in order before touching anyone else's.
func TestMorselQueueAffinityOwnRangeFirst(t *testing.T) {
	const blocks, workers = 12, 3
	q := NewMorselQueueAffinity(blocks, workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*blocks/workers, (w+1)*blocks/workers
		for want := lo; want < hi; want++ {
			bi, ok := q.NextFor(w)
			if !ok || bi != want {
				t.Fatalf("worker %d claim = %d,%v want %d,true", w, bi, ok, want)
			}
		}
	}
	for w := 0; w < workers; w++ {
		if _, ok := q.NextFor(w); ok {
			t.Fatalf("worker %d found blocks in a drained queue", w)
		}
	}
}

// TestMorselQueueAffinitySteal drains one worker's range and checks the
// worker keeps claiming — from the most-loaded victim first — until the
// whole table is exhausted.
func TestMorselQueueAffinitySteal(t *testing.T) {
	// Ranges: w0 [0,4) w1 [4,8) w2 [8,12). Drain w2's own range, then let
	// it steal everything else.
	const blocks, workers = 12, 3
	q := NewMorselQueueAffinity(blocks, workers)
	seen := make(map[int]int)
	for i := 0; i < blocks; i++ {
		bi, ok := q.NextFor(2)
		if !ok {
			t.Fatalf("queue dry after %d of %d blocks", i, blocks)
		}
		seen[bi]++
	}
	if _, ok := q.NextFor(2); ok {
		t.Fatal("queue must be exhausted")
	}
	for bi := 0; bi < blocks; bi++ {
		if seen[bi] != 1 {
			t.Fatalf("block %d claimed %d times", bi, seen[bi])
		}
	}
}

// TestMorselQueueAffinityConcurrent checks exactly-once dispatch over an
// affinity queue under contention, with more workers than ranges and a
// block count that does not divide evenly.
func TestMorselQueueAffinityConcurrent(t *testing.T) {
	const blocks, ranges, goroutines = 997, 4, 8
	q := NewMorselQueueAffinity(blocks, ranges)
	var mu sync.Mutex
	seen := make([]int, blocks)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []int
			for {
				bi, ok := q.NextFor(w)
				if !ok {
					break
				}
				mine = append(mine, bi)
			}
			mu.Lock()
			for _, bi := range mine {
				seen[bi]++
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	for bi, n := range seen {
		if n != 1 {
			t.Fatalf("block %d claimed %d times", bi, n)
		}
	}
}

// TestMorselQueueAffinityClamp pins the worker-count clamps: more workers
// than blocks collapses to one range per block, and zero workers still
// yields a usable single-range queue.
func TestMorselQueueAffinityClamp(t *testing.T) {
	q := NewMorselQueueAffinity(2, 8)
	seen := map[int]bool{}
	for w := 0; w < 8; w++ {
		if bi, ok := q.NextFor(w); ok {
			seen[bi] = true
		}
	}
	if len(seen) != 2 {
		t.Fatalf("clamped queue dispensed %d distinct blocks, want 2", len(seen))
	}
	q = NewMorselQueueAffinity(3, 0)
	n := 0
	for {
		if _, ok := q.NextFor(0); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("zero-worker queue dispensed %d blocks, want 3", n)
	}
}
