// Package storage implements the columnar table substrate: append-only
// columns cut into blocks, per-block min/max zone maps kept out-of-band
// (Section II-A), per-block string dictionaries (Section IV-A: "most
// database systems limit themselves to per-block dictionaries"), and NULL
// bitmaps.
//
// Scans decompress dictionary codes through an in-memory pointer array set
// up per block; with the USSR enabled, the dictionary strings are inserted
// into the USSR at array-setup time so in-flight references point there
// (Section IV-D).
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ocht/internal/blockzip"
	"ocht/internal/domain"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

// BlockRows is the number of values per block.
const BlockRows = 1 << 16

// CompressMode selects how string blocks are compressed at seal time.
type CompressMode int32

// Seal-compression modes.
const (
	// CompressAuto compresses a string block only when the pair-table +
	// front-coded form is actually smaller than the plain dictionary.
	CompressAuto CompressMode = iota
	// CompressOn always keeps the compressed form when building succeeds
	// (budget failures still fall back to plain, explicitly).
	CompressOn
	// CompressOff never compresses.
	CompressOff
)

// ParseCompressMode maps the -seal-compress flag values.
func ParseCompressMode(s string) (CompressMode, error) {
	switch s {
	case "auto", "":
		return CompressAuto, nil
	case "on":
		return CompressOn, nil
	case "off":
		return CompressOff, nil
	}
	return CompressAuto, fmt.Errorf("storage: bad compress mode %q (want on, off or auto)", s)
}

// String returns the flag spelling of the mode.
func (m CompressMode) String() string {
	switch m {
	case CompressOn:
		return "on"
	case CompressOff:
		return "off"
	default:
		return "auto"
	}
}

// Seal-compression knobs. The mode is process-global (sealing happens in
// column builders created all over the engine); the row threshold keeps
// the per-commit tail republication on the ingest write path from paying
// pair-table learning for tiny deltas.
var (
	sealCompression  atomic.Int32 // CompressMode, default CompressAuto
	compressMinRows  atomic.Int32
	compressBudget   atomic.Int64
	compressedBlocks atomic.Int64 // string blocks sealed compressed
	compressFallback atomic.Int64 // budget/build failures sealed plain
)

func init() {
	compressMinRows.Store(4096)
	compressBudget.Store(blockzip.DefaultBudget)
}

// SetSealCompression sets the process-wide seal-compression mode.
func SetSealCompression(m CompressMode) { sealCompression.Store(int32(m)) }

// SealCompression returns the current mode.
func SealCompression() CompressMode { return CompressMode(sealCompression.Load()) }

// SetCompressMinRows sets the minimum block row count for compression
// (tests lower it to exercise compression on small blocks).
func SetCompressMinRows(n int) { compressMinRows.Store(int32(n)) }

// SetCompressBudget sets the per-block dictionary raw-byte budget.
func SetCompressBudget(n int64) { compressBudget.Store(n) }

// CompressionStats reports how many string blocks sealed compressed and
// how many fell back to plain encoding because dictionary building failed
// (e.g. the per-block budget was exceeded).
func CompressionStats() (compressed, fallbacks int64) {
	return compressedBlocks.Load(), compressFallback.Load()
}

// Block holds the values of one column over BlockRows rows. Exactly one
// data slice is populated, matching the column type. String data is
// dictionary-compressed: Dict holds the distinct strings, Codes the
// per-row dictionary codes.
//
// Integer blocks whose value range is narrow enough are bit-packed at seal
// time (frame of reference): PackWords holds PackBits-wide offsets from
// PackMin, no value crossing a word boundary, and the plain slice is
// dropped. Sealed blocks are immutable, so scans hand out zero-copy views
// of either form.
type Block struct {
	N     int
	Nulls []bool // nil when no NULLs in this block

	I8  []int8
	I16 []int16
	I32 []int32
	I64 []int64
	F64 []float64

	Dict  []string
	Codes []int32

	// Compressed string form (seal-time, see compressStrBlock): when ZDict
	// is non-nil the plain Dict/Codes slices are dropped, the dictionary
	// lives pair-table-compressed and front-coded in ZDict (sorted order),
	// and the per-row codes are bit-packed in ZCodes.
	ZDict  *blockzip.Dict
	ZCodes blockzip.PackedU32

	PackWords []uint64 // non-nil iff the block is bit-packed
	PackBits  int
	PackMin   int64
}

// Packed reports whether the block stores bit-packed integers.
func (b *Block) Packed() bool { return b.PackWords != nil }

// DictCompressed reports whether the block stores its string dictionary
// in the compressed form.
func (b *Block) DictCompressed() bool { return b.ZDict != nil }

// DictLen returns the number of distinct dictionary entries of a string
// block, in either representation.
func (b *Block) DictLen() int {
	if b.ZDict != nil {
		return b.ZDict.Len()
	}
	return len(b.Dict)
}

// CodeAt returns the dictionary code of row i, in either representation.
func (b *Block) CodeAt(i int) int32 {
	if b.ZDict != nil {
		return int32(b.ZCodes.At(i))
	}
	return b.Codes[i]
}

// zoneMap is the out-of-band per-block metadata: min/max for integer
// blocks (Section II-A stores these in row-group headers or the catalog,
// never inside the block).
type zoneMap struct {
	min, max int64
	valid    bool
}

// Column is an append-only typed column.
type Column struct {
	Name     string
	Type     vec.Type
	Nullable bool

	blocks []*Block
	zones  []zoneMap // parallel to blocks, integer columns only

	// Builder state.
	cur     *Block
	curZone zoneMap
	curDict map[string]int32

	// compressErr records the most recent dictionary-build failure that
	// forced a plain-encoding fallback at seal time (per-block budget
	// exceeded). The block still seals correctly — plain — but the error
	// is surfaced instead of silently producing an empty dictionary.
	compressErr error
}

// CompressErr returns the most recent seal-compression fallback error, or
// nil when every sealed block compressed (or was left plain by policy).
func (c *Column) CompressErr() error { return c.compressErr }

// NewColumn creates an empty column.
func NewColumn(name string, t vec.Type, nullable bool) *Column {
	return &Column{Name: name, Type: t, Nullable: nullable}
}

func (c *Column) startBlock() {
	b := &Block{}
	switch c.Type {
	case vec.I8:
		b.I8 = make([]int8, 0, BlockRows)
	case vec.I16:
		b.I16 = make([]int16, 0, BlockRows)
	case vec.I32:
		b.I32 = make([]int32, 0, BlockRows)
	case vec.I64:
		b.I64 = make([]int64, 0, BlockRows)
	case vec.F64:
		b.F64 = make([]float64, 0, BlockRows)
	case vec.Str:
		b.Codes = make([]int32, 0, BlockRows)
		c.curDict = map[string]int32{}
	default:
		panic("storage: unsupported column type " + c.Type.String())
	}
	c.cur = b
	c.curZone = zoneMap{min: 1<<63 - 1, max: -1 << 63, valid: false}
}

func (c *Column) sealBlock() {
	if c.cur == nil {
		return
	}
	compressIntBlock(c.cur, c.Type)
	if c.Type == vec.Str {
		if err := compressStrBlock(c.cur); err != nil {
			// Explicit plain fallback: the block keeps its full Dict/Codes,
			// the failure is counted and surfaced — never an empty dict.
			c.compressErr = err
			compressFallback.Add(1)
		}
	}
	c.blocks = append(c.blocks, c.cur)
	c.zones = append(c.zones, c.curZone)
	c.cur = nil
	c.curDict = nil
}

// compressStrBlock rewrites a string block into the compressed sealed
// form when the seal-compression policy asks for it: the dictionary is
// sorted (front-coding wants ordered neighbours), codes are remapped
// through the sort permutation and bit-packed, and the dictionary is
// pair-table compressed. Under CompressAuto the rewrite is kept only when
// it beats the plain resident footprint. A build error (budget exceeded)
// leaves the block plain and is returned for the sealer to surface.
func compressStrBlock(b *Block) error {
	mode := SealCompression()
	if mode == CompressOff || len(b.Dict) == 0 || b.N < int(compressMinRows.Load()) {
		return nil
	}
	sorted, remap := blockzip.SortWithPermutation(b.Dict)
	d, err := blockzip.Build(sorted, int(compressBudget.Load()))
	if err != nil {
		return err
	}
	codes := make([]uint32, b.N)
	for i, old := range b.Codes {
		codes[i] = uint32(remap[old])
	}
	packed := blockzip.PackU32(codes, uint32(d.Len()-1))
	if mode == CompressAuto {
		comp := int64(d.CompressedBytes() + packed.Bytes())
		if comp >= plainStrBytes(b) {
			return nil
		}
	}
	b.ZDict = d
	b.ZCodes = packed
	b.Dict, b.Codes = nil, nil
	compressedBlocks.Add(1)
	return nil
}

// plainStrBytes is the resident footprint of a plain string block: the
// dictionary bytes, one 16-byte string header per entry, and 4-byte codes.
func plainStrBytes(b *Block) int64 {
	var n int64
	for _, s := range b.Dict {
		n += int64(len(s))
	}
	return n + 16*int64(len(b.Dict)) + 4*int64(b.N)
}

// compressIntBlock bit-packs an integer block when that shrinks it: values
// become PackBits-wide offsets from the physical minimum (which, unlike
// the zone map, includes the zero placeholders NULL rows store) and the
// plain slice is dropped. Runs once per sealed block, never on a hot path.
func compressIntBlock(b *Block, t vec.Type) {
	if b.N == 0 {
		return
	}
	var min, max int64
	switch t {
	case vec.I8:
		min, max = int64(b.I8[0]), int64(b.I8[0])
		for _, x := range b.I8 {
			if int64(x) < min {
				min = int64(x)
			}
			if int64(x) > max {
				max = int64(x)
			}
		}
	case vec.I16:
		min, max = int64(b.I16[0]), int64(b.I16[0])
		for _, x := range b.I16 {
			if int64(x) < min {
				min = int64(x)
			}
			if int64(x) > max {
				max = int64(x)
			}
		}
	case vec.I32:
		min, max = int64(b.I32[0]), int64(b.I32[0])
		for _, x := range b.I32 {
			if int64(x) < min {
				min = int64(x)
			}
			if int64(x) > max {
				max = int64(x)
			}
		}
	case vec.I64:
		min, max = b.I64[0], b.I64[0]
		for _, x := range b.I64 {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
	default:
		return
	}
	bits := rangeBits(min, max)
	if bits == 0 {
		return
	}
	per := 64 / bits
	words := (b.N + per - 1) / per
	if words*8 >= b.N*t.Width() {
		return // packing would not shrink the block
	}
	packed := make([]uint64, words)
	switch t {
	case vec.I8:
		for i, x := range b.I8 {
			packed[i/per] |= uint64(int64(x)-min) << (uint(i%per) * uint(bits))
		}
		b.I8 = nil
	case vec.I16:
		for i, x := range b.I16 {
			packed[i/per] |= uint64(int64(x)-min) << (uint(i%per) * uint(bits))
		}
		b.I16 = nil
	case vec.I32:
		for i, x := range b.I32 {
			packed[i/per] |= uint64(int64(x)-min) << (uint(i%per) * uint(bits))
		}
		b.I32 = nil
	case vec.I64:
		for i, x := range b.I64 {
			packed[i/per] |= uint64(x-min) << (uint(i%per) * uint(bits))
		}
		b.I64 = nil
	}
	b.PackWords, b.PackBits, b.PackMin = packed, bits, min
}

// rangeBits returns the offset width needed for [min, max], or 0 when the
// range is too wide to pack (>= 2^56 distinct offsets — wider than any
// width that could shrink a block).
func rangeBits(min, max int64) int {
	r := uint64(max) - uint64(min) // two's complement: correct for any min <= max
	if r >= 1<<56 {
		return 0
	}
	bits := 1
	for uint64(1)<<uint(bits) <= r {
		bits++
	}
	return bits
}

func (c *Column) ensure() *Block {
	if c.cur == nil {
		c.startBlock()
	}
	if c.cur.N == BlockRows {
		c.sealBlock()
		c.startBlock()
	}
	return c.cur
}

// AppendInt appends an integer (or the bit pattern for F64 via
// AppendFloat) value.
func (c *Column) AppendInt(v int64) {
	b := c.ensure()
	switch c.Type {
	case vec.I8:
		b.I8 = append(b.I8, int8(v))
	case vec.I16:
		b.I16 = append(b.I16, int16(v))
	case vec.I32:
		b.I32 = append(b.I32, int32(v))
	case vec.I64:
		b.I64 = append(b.I64, v)
	default:
		panic("storage: AppendInt on " + c.Type.String())
	}
	if !c.curZone.valid {
		c.curZone = zoneMap{min: v, max: v, valid: true}
	} else {
		if v < c.curZone.min {
			c.curZone.min = v
		}
		if v > c.curZone.max {
			c.curZone.max = v
		}
	}
	if b.Nulls != nil {
		b.Nulls = append(b.Nulls, false)
	}
	b.N++
}

// AppendFloat appends a float64 value.
func (c *Column) AppendFloat(v float64) {
	b := c.ensure()
	b.F64 = append(b.F64, v)
	if b.Nulls != nil {
		b.Nulls = append(b.Nulls, false)
	}
	b.N++
}

// AppendString appends a string value, dictionary-encoding it within the
// current block.
func (c *Column) AppendString(s string) {
	b := c.ensure()
	code, ok := c.curDict[s]
	if !ok {
		code = int32(len(b.Dict))
		b.Dict = append(b.Dict, s)
		c.curDict[s] = code
	}
	b.Codes = append(b.Codes, code)
	if b.Nulls != nil {
		b.Nulls = append(b.Nulls, false)
	}
	b.N++
}

// AppendNull appends a NULL. The physical value is the zero value of the
// type (or dictionary code 0 for strings, materialized as the empty
// string entry).
func (c *Column) AppendNull() {
	if !c.Nullable {
		panic("storage: NULL into non-nullable column " + c.Name)
	}
	b := c.ensure()
	if b.Nulls == nil {
		b.Nulls = make([]bool, b.N, BlockRows)
	}
	switch c.Type {
	case vec.I8:
		b.I8 = append(b.I8, 0)
	case vec.I16:
		b.I16 = append(b.I16, 0)
	case vec.I32:
		b.I32 = append(b.I32, 0)
	case vec.I64:
		b.I64 = append(b.I64, 0)
	case vec.F64:
		b.F64 = append(b.F64, 0)
	case vec.Str:
		code, ok := c.curDict[""]
		if !ok {
			code = int32(len(b.Dict))
			b.Dict = append(b.Dict, "")
			c.curDict[""] = code
		}
		b.Codes = append(b.Codes, code)
	}
	b.Nulls = append(b.Nulls, true)
	b.N++
}

// Seal finishes the current block; must be called after loading.
func (c *Column) Seal() { c.sealBlock() }

// Blocks returns the number of sealed blocks.
func (c *Column) Blocks() int { return len(c.blocks) }

// Block returns sealed block i.
func (c *Column) Block(i int) *Block { return c.blocks[i] }

// Rows returns the total sealed row count.
func (c *Column) Rows() int {
	n := 0
	for _, b := range c.blocks {
		n += b.N
	}
	return n
}

// Domain computes the total domain over a block range from the
// out-of-band zone maps — the scan-side domain derivation of Section II-A.
// Strings and floats return the unknown domain.
func (c *Column) Domain(fromBlock, toBlock int) domain.D {
	if !c.Type.IsInt() {
		return domain.Unknown
	}
	var d domain.D
	first := true
	for i := fromBlock; i < toBlock && i < len(c.zones); i++ {
		z := c.zones[i]
		if !z.valid {
			continue
		}
		if first {
			d = domain.New(z.min, z.max)
			first = false
		} else {
			d = domain.Union(d, domain.New(z.min, z.max))
		}
	}
	return d
}

// TotalDomain is Domain over all blocks.
func (c *Column) TotalDomain() domain.D { return c.Domain(0, len(c.blocks)) }

// DistinctBound returns an upper bound on the number of distinct values
// in the column, or 0 when no bound is known. For string columns it sums
// the per-block dictionary sizes — loose when the same strings recur
// across blocks, but a true bound, which is what the group-count
// estimate feeding partition-width choice needs (a string column's value
// domain carries no cardinality otherwise). Integer columns are covered
// by TotalDomain's cardinality and return 0 here.
func (c *Column) DistinctBound() int64 {
	if c.Type != vec.Str {
		return 0
	}
	n := int64(0)
	for _, b := range c.blocks {
		n += int64(b.DictLen())
	}
	return n
}

// DictStats sums per-block dictionary sizes, used by the USSR candidate
// statistics of Table III.
func (c *Column) DictStats() (entries int) {
	for _, b := range c.blocks {
		entries += b.DictLen()
	}
	return entries
}

// Footprint returns the column's resident sealed bytes (compressed, the
// form actually held in RAM) against the would-be-plain bytes the same
// data would occupy fully decompressed — the accounting surfaced on
// /metrics and in the bench perf JSON.
func (c *Column) Footprint() (compressed, plain int64) {
	for _, b := range c.blocks {
		nulls := int64(len(b.Nulls))
		switch {
		case b.ZDict != nil:
			compressed += int64(b.ZDict.CompressedBytes()+b.ZCodes.Bytes()) + nulls
			plain += b.ZDict.RawBytes() + 16*int64(b.ZDict.Len()) + 4*int64(b.N) + nulls
		case c.Type == vec.Str:
			p := plainStrBytes(b) + nulls
			compressed += p
			plain += p
		case b.Packed():
			compressed += 8*int64(len(b.PackWords)) + nulls
			plain += int64(c.Type.Width()*b.N) + nulls
		default:
			w := int64(c.Type.Width() * b.N)
			if c.Type == vec.F64 {
				w = 8 * int64(b.N)
			}
			compressed += w + nulls
			plain += w + nulls
		}
	}
	return compressed, plain
}

// Footprint sums the per-column footprints of the table.
func (t *Table) Footprint() (compressed, plain int64) {
	for _, c := range t.Cols {
		cc, pp := c.Footprint()
		compressed += cc
		plain += pp
	}
	return compressed, plain
}

// ScanBlock materializes block bi into out (which must have capacity for
// BlockRows). For string columns it sets up the per-block dictionary
// pointer array through the store: every distinct dictionary string is
// interned once per block — with the USSR enabled this is exactly the
// paper's "the scan inserts all dictionary strings into the USSR"
// (Section IV-D). Returns the number of rows.
func (c *Column) ScanBlock(bi int, out *vec.Vector, st *strs.Store) int {
	b := c.blocks[bi]
	if b.Packed() {
		unpackBlockInto(b, c.Type, out)
		return finishScan(b, out)
	}
	switch c.Type {
	case vec.I8:
		copy(out.I8, b.I8)
	case vec.I16:
		copy(out.I16, b.I16)
	case vec.I32:
		copy(out.I32, b.I32)
	case vec.I64:
		copy(out.I64, b.I64)
	case vec.F64:
		copy(out.F64, b.F64)
	case vec.Str:
		if b.ZDict != nil {
			refs := make([]vec.StrRef, b.ZDict.Len())
			b.ZDict.ForEach(func(i int, s []byte) {
				refs[i] = st.Intern(string(s))
			})
			for i := 0; i < b.N; i++ {
				out.Str[i] = refs[b.ZCodes.At(i)]
			}
			break
		}
		refs := make([]vec.StrRef, len(b.Dict))
		for i, s := range b.Dict {
			refs[i] = st.Intern(s)
		}
		for i, code := range b.Codes {
			out.Str[i] = refs[code]
		}
	}
	return finishScan(b, out)
}

// StrAt decodes the single string at (block bi, row) and returns it with
// the number of bytes the access decompressed: for a compressed block only
// the entry's bucket chain is decoded — never the dictionary, never the
// block — which is the point-gather contract the acceptance counter test
// pins. scratch is reused across calls; the returned string aliases it.
func (c *Column) StrAt(bi, row int, scratch []byte) (s []byte, decoded int, scratchOut []byte) {
	if c.Type != vec.Str {
		panic("storage: StrAt on " + c.Type.String())
	}
	b := c.blocks[bi]
	if b.ZDict != nil {
		return b.ZDict.StrAt(int(b.ZCodes.At(row)), scratch)
	}
	v := b.Dict[b.Codes[row]]
	scratch = append(scratch[:0], v...)
	return scratch, 0, scratch
}

// finishScan copies the block's NULL mask into the materialization buffer.
func finishScan(b *Block, out *vec.Vector) int {
	if b.Nulls != nil {
		if out.Nulls == nil || len(out.Nulls) < b.N {
			out.Nulls = make([]bool, out.Len())
		}
		copy(out.Nulls, b.Nulls)
	} else if out.Nulls != nil {
		for i := range out.Nulls {
			out.Nulls[i] = false
		}
	}
	return b.N
}

// unpackBlockInto decompresses a bit-packed block into out's plain slice.
func unpackBlockInto(b *Block, t vec.Type, out *vec.Vector) {
	bits := uint(b.PackBits)
	per := 64 / b.PackBits
	mask := uint64(1)<<bits - 1
	switch t {
	case vec.I8:
		for i := 0; i < b.N; i++ {
			out.I8[i] = int8(b.PackMin + int64((b.PackWords[i/per]>>(uint(i%per)*bits))&mask))
		}
	case vec.I16:
		for i := 0; i < b.N; i++ {
			out.I16[i] = int16(b.PackMin + int64((b.PackWords[i/per]>>(uint(i%per)*bits))&mask))
		}
	case vec.I32:
		for i := 0; i < b.N; i++ {
			out.I32[i] = int32(b.PackMin + int64((b.PackWords[i/per]>>(uint(i%per)*bits))&mask))
		}
	case vec.I64:
		for i := 0; i < b.N; i++ {
			out.I64[i] = b.PackMin + int64((b.PackWords[i/per]>>(uint(i%per)*bits))&mask)
		}
	default:
		badBlockType(t)
	}
}

// badBlockType panics for a packed block of an unsupported type; hoisted
// out of the hot unpack kernel to keep interface boxing off its code path.
func badBlockType(t vec.Type) {
	panic("storage: packed block of type " + t.String())
}

// ViewBlock configures out as a zero-copy encoded view of block bi — the
// compressed-execution scan path. Plain integer and float blocks alias the
// sealed slices directly; bit-packed blocks become EncPacked vectors over
// the stored words; string blocks become EncDict vectors whose code table
// is built by interning each distinct dictionary string once per block
// (with the USSR enabled this is the paper's scan-side dictionary
// insertion, Section IV-D), reusing refScratch across blocks. It returns
// the row count, the (possibly grown) ref scratch, and the bytes of data
// actually materialized — dictionary references only; everything else is
// aliased.
func (c *Column) ViewBlock(bi int, out *vec.Vector, st *strs.Store, refScratch []vec.StrRef) (rows int, refs []vec.StrRef, bytes int) {
	b := c.blocks[bi]
	*out = vec.Vector{Typ: c.Type, Nulls: b.Nulls}
	switch {
	case b.Packed():
		out.Enc = vec.EncPacked
		out.Packed = b.PackWords
		out.PackBits = b.PackBits
		out.PackMin = b.PackMin
		out.PackOff = 0
		out.PackLen = b.N
	case c.Type == vec.Str && b.ZDict != nil:
		// Compressed dictionary: decode each distinct string exactly once
		// (that is the only decompression the block view pays — row codes
		// stay bit-packed and alias the sealed words zero-copy), and count
		// the decoded dictionary bytes against the decompression budget.
		refScratch = refScratch[:0]
		b.ZDict.ForEach(func(_ int, s []byte) {
			refScratch = append(refScratch, st.Intern(string(s)))
			bytes += len(s)
		})
		out.Enc = vec.EncDict
		out.DictRefs = refScratch
		out.Packed = b.ZCodes.Words
		out.PackBits = b.ZCodes.Bits
		out.PackMin = 0
		out.PackOff = 0
		out.PackLen = b.N
		bytes += b.ZDict.Len() * 8
	case c.Type == vec.Str:
		refScratch = refScratch[:0]
		for _, s := range b.Dict {
			refScratch = append(refScratch, st.Intern(s))
		}
		out.Enc = vec.EncDict
		out.Codes = b.Codes
		out.DictRefs = refScratch
		bytes = len(b.Dict) * 8
	default:
		switch c.Type {
		case vec.I8:
			out.I8 = b.I8
		case vec.I16:
			out.I16 = b.I16
		case vec.I32:
			out.I32 = b.I32
		case vec.I64:
			out.I64 = b.I64
		case vec.F64:
			out.F64 = b.F64
		default:
			panic("storage: ViewBlock on " + c.Type.String())
		}
	}
	return b.N, refScratch, bytes
}

// Zone returns the out-of-band zone map of block bi: the min/max over the
// block's non-NULL values, with ok false when unknown (string and float
// columns, or all-NULL blocks). This is the pushdown API zone-map block
// skipping builds on.
func (c *Column) Zone(bi int) (min, max int64, ok bool) {
	z := c.zones[bi]
	return z.min, z.max, z.valid
}

// Table is a named set of equally-long columns.
type Table struct {
	Name string
	Cols []*Column

	byName map[string]int
}

// NewTable creates a table with the given columns.
func NewTable(name string, cols ...*Column) *Table {
	t := &Table{Name: name, Cols: cols, byName: map[string]int{}}
	for i, c := range cols {
		t.byName[c.Name] = i
	}
	return t
}

// Seal seals all columns.
func (t *Table) Seal() {
	for _, c := range t.Cols {
		c.Seal()
	}
}

// Rows returns the row count (of the first column).
func (t *Table) Rows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Rows()
}

// Col returns the column with the given name.
func (t *Table) Col(name string) *Column {
	i, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("storage: table %s has no column %s", t.Name, name))
	}
	return t.Cols[i]
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	i, ok := t.byName[name]
	if !ok {
		return -1
	}
	return i
}

// Catalog maps table names to tables. It is safe for concurrent use:
// readers take a read lock (or pin a Snapshot), writers a write lock, and
// the version counter is read without any lock. Tables themselves are
// immutable once registered — mutation is modeled as replacing a table
// with a new value (copy-on-write, see ExtendTable), so a reader holding
// a *Table from before a replacement keeps a consistent view.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	version atomic.Uint64
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: map[string]*Table{}} }

// Add registers (or replaces) a table and bumps the catalog version.
func (c *Catalog) Add(t *Table) {
	c.mu.Lock()
	c.tables[t.Name] = t
	c.version.Add(1)
	c.mu.Unlock()
}

// Version counts catalog mutations. Plan caches key on it so a cached
// plan is never reused against a catalog whose tables changed.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// Table looks a table up by name.
func (c *Catalog) Table(name string) *Table {
	t, ok := c.TableOK(name)
	if !ok {
		panic("storage: unknown table " + name)
	}
	return t
}

// TableOK looks a table up by name without panicking.
func (c *Catalog) TableOK(name string) (*Table, bool) {
	c.mu.RLock()
	t, ok := c.tables[name]
	c.mu.RUnlock()
	return t, ok
}

// Tables returns the number of registered tables.
func (c *Catalog) Tables() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tables)
}

// Names returns the registered table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Snapshot pins the current catalog contents. The snapshot is immutable:
// concurrent Adds replace tables in the catalog but never mutate the
// tables the snapshot references, so a query planned and executed against
// a snapshot sees one frozen row count per table no matter how many
// commits land while it runs.
func (c *Catalog) Snapshot() *Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tabs := make(map[string]*Table, len(c.tables))
	for n, t := range c.tables {
		tabs[n] = t
	}
	return &Snapshot{tables: tabs, version: c.version.Load()}
}

// Snapshot is an immutable view of a catalog at one version.
type Snapshot struct {
	tables  map[string]*Table
	version uint64
}

// Table looks a table up by name.
func (s *Snapshot) Table(name string) *Table {
	t, ok := s.tables[name]
	if !ok {
		panic("storage: unknown table " + name)
	}
	return t
}

// TableOK looks a table up by name without panicking.
func (s *Snapshot) TableOK(name string) (*Table, bool) {
	t, ok := s.tables[name]
	return t, ok
}

// Version is the catalog version the snapshot was taken at.
func (s *Snapshot) Version() uint64 { return s.version }

// Tables returns the number of tables in the snapshot.
func (s *Snapshot) Tables() int { return len(s.tables) }

// Names returns the snapshot's table names, sorted.
func (s *Snapshot) Names() []string {
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ExtendTable builds a new table whose columns hold base's sealed blocks
// followed by delta's — the copy-on-write append step of the ingest write
// path. Block and zone-map slices are freshly allocated so the result
// shares no mutable state with base; the blocks themselves are shared,
// which is safe because sealed blocks are never written again. Both
// tables must be sealed and schema-identical.
func ExtendTable(base, delta *Table) *Table {
	if len(base.Cols) != len(delta.Cols) {
		panic(fmt.Sprintf("storage: ExtendTable %s: %d vs %d columns",
			base.Name, len(base.Cols), len(delta.Cols)))
	}
	cols := make([]*Column, len(base.Cols))
	for i, bc := range base.Cols {
		dc := delta.Cols[i]
		if bc.cur != nil || dc.cur != nil {
			panic("storage: ExtendTable on unsealed column " + bc.Name)
		}
		if bc.Type != dc.Type || bc.Name != dc.Name {
			panic(fmt.Sprintf("storage: ExtendTable %s: column %d mismatch (%s %s vs %s %s)",
				base.Name, i, bc.Name, bc.Type, dc.Name, dc.Type))
		}
		nc := &Column{Name: bc.Name, Type: bc.Type, Nullable: bc.Nullable || dc.Nullable}
		nc.blocks = make([]*Block, 0, len(bc.blocks)+len(dc.blocks))
		nc.blocks = append(append(nc.blocks, bc.blocks...), dc.blocks...)
		nc.zones = make([]zoneMap, 0, len(bc.zones)+len(dc.zones))
		nc.zones = append(append(nc.zones, bc.zones...), dc.zones...)
		cols[i] = nc
	}
	return NewTable(base.Name, cols...)
}
