package storage

import (
	"fmt"
	"testing"

	"ocht/internal/domain"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

func TestIntColumnRoundTrip(t *testing.T) {
	c := NewColumn("v", vec.I64, false)
	const n = BlockRows + 100 // spills into a second block
	for i := 0; i < n; i++ {
		c.AppendInt(int64(i) - 50)
	}
	c.Seal()
	if c.Blocks() != 2 || c.Rows() != n {
		t.Fatalf("blocks=%d rows=%d", c.Blocks(), c.Rows())
	}
	st := strs.NewStore(false)
	out := vec.New(vec.I64, BlockRows)
	got := 0
	for b := 0; b < c.Blocks(); b++ {
		rows := c.ScanBlock(b, out, st)
		for i := 0; i < rows; i++ {
			if out.I64[i] != int64(got)-50 {
				t.Fatalf("row %d: %d", got, out.I64[i])
			}
			got++
		}
	}
	if got != n {
		t.Fatalf("scanned %d rows", got)
	}
}

func TestZoneMaps(t *testing.T) {
	c := NewColumn("v", vec.I32, false)
	for i := 0; i < BlockRows; i++ {
		c.AppendInt(int64(i % 100)) // block 0: [0,99]
	}
	for i := 0; i < BlockRows; i++ {
		c.AppendInt(int64(i%100) + 1000) // block 1: [1000,1099]
	}
	c.Seal()
	if d := c.Domain(0, 1); d != domain.New(0, 99) {
		t.Errorf("block 0 domain %v", d)
	}
	if d := c.Domain(1, 2); d != domain.New(1000, 1099) {
		t.Errorf("block 1 domain %v", d)
	}
	if d := c.TotalDomain(); d != domain.New(0, 1099) {
		t.Errorf("total domain %v", d)
	}
}

func TestStringDictionary(t *testing.T) {
	c := NewColumn("s", vec.Str, false)
	words := []string{"red", "green", "blue"}
	const n = 1000
	for i := 0; i < n; i++ {
		c.AppendString(words[i%3])
	}
	c.Seal()
	if got := len(c.Block(0).Dict); got != 3 {
		t.Fatalf("dictionary has %d entries, want 3", got)
	}
	st := strs.NewStore(true)
	out := vec.New(vec.Str, BlockRows)
	c.ScanBlock(0, out, st)
	for i := 0; i < n; i++ {
		if got := st.Get(out.Str[i]); got != words[i%3] {
			t.Fatalf("row %d: %q", i, got)
		}
		if !out.Str[i].InUSSR() {
			t.Fatal("scan with USSR store must produce USSR-resident refs")
		}
	}
	// Equal strings across rows must share the same reference.
	if out.Str[0] != out.Str[3] {
		t.Error("dictionary decompression must reuse the interned ref")
	}
}

func TestNulls(t *testing.T) {
	c := NewColumn("v", vec.I64, true)
	c.AppendInt(1)
	c.AppendNull()
	c.AppendInt(3)
	c.Seal()
	st := strs.NewStore(false)
	out := vec.New(vec.I64, BlockRows)
	c.ScanBlock(0, out, st)
	if out.IsNull(0) || !out.IsNull(1) || out.IsNull(2) {
		t.Error("null mask wrong")
	}
	if out.I64[0] != 1 || out.I64[2] != 3 {
		t.Error("values wrong around nulls")
	}
}

func TestNullString(t *testing.T) {
	c := NewColumn("s", vec.Str, true)
	c.AppendString("x")
	c.AppendNull()
	c.Seal()
	st := strs.NewStore(false)
	out := vec.New(vec.Str, BlockRows)
	c.ScanBlock(0, out, st)
	if !out.IsNull(1) || out.IsNull(0) {
		t.Error("string null mask")
	}
}

func TestTableCatalog(t *testing.T) {
	a := NewColumn("a", vec.I64, false)
	b := NewColumn("b", vec.Str, false)
	for i := 0; i < 10; i++ {
		a.AppendInt(int64(i))
		b.AppendString(fmt.Sprintf("s%d", i))
	}
	tab := NewTable("t", a, b)
	tab.Seal()
	if tab.Rows() != 10 {
		t.Error("rows")
	}
	if tab.Col("b") != b || tab.ColIndex("a") != 0 || tab.ColIndex("zz") != -1 {
		t.Error("column lookup")
	}
	cat := NewCatalog()
	cat.Add(tab)
	if cat.Table("t") != tab || cat.Tables() != 1 {
		t.Error("catalog")
	}
}

func TestDictStats(t *testing.T) {
	c := NewColumn("s", vec.Str, false)
	for i := 0; i < BlockRows+10; i++ {
		c.AppendString(fmt.Sprintf("w%d", i%500))
	}
	c.Seal()
	// Block 0 has 500 distinct, block 1 at most 10.
	if got := c.DictStats(); got < 500 || got > 510 {
		t.Errorf("dict stats %d", got)
	}
}

func TestAppendNullPanicsOnNonNullable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewColumn("v", vec.I64, false).AppendNull()
}
