// Package strhash provides the string hash function shared by the string
// heap, the USSR and the hash-table operators.
//
// Its cost is proportional to string length — exactly the cost the USSR's
// pre-computed hashes avoid (Section IV-E), which is what makes the
// hash-computation speedups of Figure 7 grow with string length.
package strhash

import "encoding/binary"

const (
	seed  = 0x9e3779b97f4a7c15
	prime = 0xff51afd7ed558ccd
)

// Hash returns a 64-bit hash of b.
func Hash(b []byte) uint64 {
	h := uint64(seed) ^ uint64(len(b))*prime
	for len(b) >= 8 {
		h = mix(h ^ binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail uint64
		for i := len(b) - 1; i >= 0; i-- {
			tail = tail<<8 | uint64(b[i])
		}
		h = mix(h ^ tail)
	}
	return mix(h)
}

// HashString is Hash for a string without forcing a []byte conversion
// allocation at the call site.
func HashString(s string) uint64 {
	h := uint64(seed) ^ uint64(len(s))*prime
	for len(s) >= 8 {
		h = mix(h ^ le64(s))
		s = s[8:]
	}
	if len(s) > 0 {
		var tail uint64
		for i := len(s) - 1; i >= 0; i-- {
			tail = tail<<8 | uint64(s[i])
		}
		h = mix(h ^ tail)
	}
	return mix(h)
}

func le64(s string) uint64 {
	_ = s[7]
	return uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
		uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= prime
	x ^= x >> 33
	return x
}
