package strhash

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestHashMatchesHashString(t *testing.T) {
	f := func(b []byte) bool {
		return Hash(b) == HashString(string(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinctStringsDistinctHashes(t *testing.T) {
	seen := map[uint64]string{}
	for i := 0; i < 100_000; i++ {
		s := fmt.Sprintf("key-%d", i)
		h := HashString(s)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision between %q and %q", prev, s)
		}
		seen[h] = s
	}
}

func TestLengthMatters(t *testing.T) {
	if HashString("ab") == HashString("ab\x00") {
		t.Error("trailing NUL must change the hash")
	}
	if HashString("") == HashString("\x00") {
		t.Error("empty vs one NUL byte")
	}
}

func TestDeterministic(t *testing.T) {
	if HashString("stable") != HashString("stable") {
		t.Error("hash must be deterministic")
	}
}

func TestBitDispersion(t *testing.T) {
	// Flipping one input bit should change roughly half the output bits.
	base := HashString("dispersal-test-string")
	other := HashString("dispersal-test-strinh") // last char +1
	diff := base ^ other
	bits := 0
	for diff != 0 {
		bits += int(diff & 1)
		diff >>= 1
	}
	if bits < 16 || bits > 48 {
		t.Errorf("poor dispersion: %d differing bits", bits)
	}
}
