// Package strheap implements the baseline query string heap.
//
// Without the USSR, materializing operators allocate every string on the
// heap (Section IV-A); strings in-flight are 64-bit handles (the paper's
// pointers). The heap performs no deduplication: every Put appends, which
// is what makes peak memory grow with duplicate-heavy string data and
// what the USSR's opportunistic deduplication avoids.
package strheap

import (
	"encoding/binary"

	"ocht/internal/strhash"
	"ocht/internal/vec"
)

// Heap is an arena-backed string store. The zero value is ready to use.
// Handles are byte offsets into the arena (tag bit clear, so they are
// distinguishable from USSR references).
type Heap struct {
	buf  []byte
	puts int
}

// Put appends s and returns its handle. No deduplication happens.
func (h *Heap) Put(s string) vec.StrRef {
	if len(h.buf) == 0 {
		// Offset 0 is reserved: StrRef 0 is the invalid/exception marker.
		h.buf = append(h.buf, 0, 0, 0, 0)
	}
	off := len(h.buf)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
	h.buf = append(h.buf, lenBuf[:]...)
	h.buf = append(h.buf, s...)
	h.puts++
	return vec.StrRef(off)
}

// Get returns the string for handle r.
func (h *Heap) Get(r vec.StrRef) string {
	return string(h.bytes(r))
}

// Bytes returns the raw bytes for handle r. The result aliases the arena
// and must not be modified or retained across Puts.
func (h *Heap) Bytes(r vec.StrRef) []byte { return h.bytes(r) }

func (h *Heap) bytes(r vec.StrRef) []byte {
	off := int(r.HeapOffset())
	n := int(binary.LittleEndian.Uint32(h.buf[off:]))
	return h.buf[off+4 : off+4+n]
}

// Len returns the length of the string for handle r without materializing.
func (h *Heap) Len(r vec.StrRef) int {
	return int(binary.LittleEndian.Uint32(h.buf[int(r.HeapOffset()):]))
}

// Hash computes the hash of the string for handle r. Unlike USSR-resident
// strings there is no pre-computed hash: the full string is read.
func (h *Heap) Hash(r vec.StrRef) uint64 {
	return strhash.Hash(h.bytes(r))
}

// Size returns the arena footprint in bytes — the heap contribution to
// peak query memory.
func (h *Heap) Size() int { return len(h.buf) }

// Count returns the number of Puts (duplicate strings count repeatedly).
func (h *Heap) Count() int { return h.puts }

// Reset drops all strings, keeping the arena capacity.
func (h *Heap) Reset() {
	h.buf = h.buf[:0]
	h.puts = 0
}
