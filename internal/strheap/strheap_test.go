package strheap

import (
	"fmt"
	"strings"
	"testing"

	"ocht/internal/strhash"
)

func TestPutGet(t *testing.T) {
	var h Heap
	words := []string{"", "a", "hello", strings.Repeat("z", 10_000)}
	refs := make([]int, 0)
	_ = refs
	for _, w := range words {
		r := h.Put(w)
		if r.InUSSR() {
			t.Fatal("heap refs must not carry the USSR tag")
		}
		if got := h.Get(r); got != w {
			t.Errorf("Get = %q want %q", got, w)
		}
		if h.Len(r) != len(w) {
			t.Errorf("Len(%q) = %d", w, h.Len(r))
		}
		if h.Hash(r) != strhash.HashString(w) {
			t.Errorf("Hash(%q) mismatch", w)
		}
	}
}

func TestNoDeduplication(t *testing.T) {
	var h Heap
	a := h.Put("dup")
	b := h.Put("dup")
	if a == b {
		t.Fatal("the heap must not deduplicate (that is the USSR's job)")
	}
	if h.Count() != 2 {
		t.Errorf("count %d", h.Count())
	}
}

func TestSizeGrows(t *testing.T) {
	var h Heap
	before := h.Size()
	for i := 0; i < 100; i++ {
		h.Put(fmt.Sprintf("string number %d", i))
	}
	if h.Size() <= before {
		t.Error("size must grow")
	}
	h.Reset()
	if h.Count() != 0 {
		t.Error("reset")
	}
}

func TestRefZeroReserved(t *testing.T) {
	var h Heap
	r := h.Put("first")
	if r == 0 || r == 1 {
		t.Fatalf("handles 0 (exception marker) and 1 (NULL) must stay reserved, got %d", r)
	}
}

func TestBytesAliasesArena(t *testing.T) {
	var h Heap
	r := h.Put("alias")
	b := h.Bytes(r)
	if string(b) != "alias" {
		t.Fatal("bytes mismatch")
	}
}
