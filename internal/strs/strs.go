// Package strs unifies the two string backings of a query — the USSR and
// the fall-back string heap — behind one Store, mirroring Section IV-B:
// "both heap-backed and USSR-backed strings are represented as normal
// pointers, which means that query engine operators can treat all strings
// uniformly".
package strs

import (
	"bytes"

	"ocht/internal/strhash"
	"ocht/internal/strheap"
	"ocht/internal/ussr"
	"ocht/internal/vec"
)

// Shard-tagged heap references: during parallel execution every worker
// interns into a private heap, and the owning shard is recorded in bits
// 48..62 of the reference (bit 63 stays the USSR tag). Any store holding
// the shared shard table can then resolve any worker's reference, which is
// what lets the merge phase compare and re-hash group keys produced by
// different workers without re-interning. Serial execution never sets
// shard bits, so references stay byte-identical to the single-store
// engine.
const (
	shardShift = 48
	shardBits  = 15
	shardMask  = vec.StrRef((1<<shardBits)-1) << shardShift
)

// Store owns a query's string memory. When UseUSSR is false (the vanilla
// baseline) every Intern allocates on the heap.
type Store struct {
	Heap    strheap.Heap
	U       *ussr.USSR
	UseUSSR bool

	shard  vec.StrRef      // this store's pre-shifted shard tag; 0 in serial mode
	shards []*strheap.Heap // shared shard table; nil outside parallel execution

	// Counters for the Figure 6 breakdown.
	HashFast, HashSlow   int // pre-computed vs computed hashes
	EqualFast, EqualSlow int // pointer vs byte-wise comparisons
}

// NewStore creates a store; useUSSR selects whether Intern tries the USSR
// first.
func NewStore(useUSSR bool) *Store {
	s := &Store{UseUSSR: useUSSR}
	if useUSSR {
		s.U = ussr.New()
	}
	return s
}

// NewStoreUSSR creates a USSR-enabled store around an existing region
// instead of allocating one. The query service pools regions across
// requests this way; u must be unfrozen and empty (ussr.Reset).
func NewStoreUSSR(u *ussr.USSR) *Store {
	return &Store{UseUSSR: true, U: u}
}

// Shard prepares the store for parallel execution and returns n worker
// stores. Each worker store shares the (frozen or about-to-be-frozen)
// USSR and the shard table but owns a private heap, so worker Interns
// never contend; the parent keeps shard 0. Shard must be called before
// the workers start — the shard table grows only between runs and is
// read-only while workers execute. Calling Shard again (a context reused
// across several Runs, as the benchmark loops do) appends fresh worker
// heaps after the existing shards, so references issued by earlier runs
// keep resolving.
func (st *Store) Shard(n int) []*Store {
	if st.shards == nil {
		st.shards = []*strheap.Heap{&st.Heap}
	}
	base := len(st.shards)
	if base+n > 1<<shardBits {
		panic("strs: shard table exhausted; reuse of one query context across too many parallel runs")
	}
	workers := make([]*Store, n)
	for i := range workers {
		w := &Store{
			U:       st.U,
			UseUSSR: st.UseUSSR,
			shard:   vec.StrRef(base+i) << shardShift,
			shards:  nil, // set below, after the table stops growing
		}
		st.shards = append(st.shards, &w.Heap)
		workers[i] = w
	}
	for _, w := range workers {
		w.shards = st.shards
	}
	return workers
}

// heapOf routes a heap reference to its backing heap, stripping the shard
// tag. Outside parallel execution (shards == nil) references carry no
// shard bits and resolve against the store's own heap.
func (st *Store) heapOf(r vec.StrRef) (*strheap.Heap, vec.StrRef) {
	if st.shards == nil {
		return &st.Heap, r
	}
	return st.shards[r>>shardShift&((1<<shardBits)-1)], r &^ shardMask
}

// Intern returns a reference for s: USSR-resident when possible, otherwise
// heap-allocated. Scans call this when setting up per-block dictionary
// arrays; expression evaluation calls it for computed strings. Once the
// USSR is frozen, Intern consults it read-only (Lookup) and falls back to
// this store's private heap, so concurrent workers can keep interning.
func (st *Store) Intern(s string) vec.StrRef {
	if st.UseUSSR {
		if st.U.Frozen() {
			if r, ok := st.U.Lookup(s); ok {
				return r
			}
		} else if r, ok := st.U.Insert(s); ok {
			return r
		}
	}
	return st.Heap.Put(s) | st.shard
}

// Warm inserts s into the USSR without a heap fallback: rejected strings
// are simply not resident. The parallel executor warms scan dictionaries
// and plan constants through this before freezing the region.
func (st *Store) Warm(s string) {
	if st.UseUSSR && !st.U.Frozen() {
		st.U.Insert(s)
	}
}

// InternConstant interns a query-text string constant. Constants get
// priority: they are inserted before any scan strings (Section IV-D), which
// callers arrange by interning constants at plan-build time.
func (st *Store) InternConstant(s string) vec.StrRef { return st.Intern(s) }

// Get materializes the string behind r.
func (st *Store) Get(r vec.StrRef) string {
	if r.InUSSR() {
		return st.U.Get(r)
	}
	if r == NullRef {
		return ""
	}
	h, lr := st.heapOf(r)
	return h.Get(lr)
}

// Len returns the byte length of the string behind r.
func (st *Store) Len(r vec.StrRef) int {
	if r.InUSSR() {
		return st.U.Len(r)
	}
	if r == NullRef {
		return 0
	}
	h, lr := st.heapOf(r)
	return h.Len(lr)
}

// Hash returns the hash of the string behind r. For USSR-resident strings
// this is the pre-computed hash — one load instead of a length-proportional
// computation (the paper's inline hash(char*) of Section IV-E).
func (st *Store) Hash(r vec.StrRef) uint64 {
	if r.InUSSR() {
		st.HashFast++
		return st.U.Hash(r)
	}
	if r == NullRef {
		return 0x9e3779b97f4a7c15 // fixed hash for SQL NULL
	}
	st.HashSlow++
	h, lr := st.heapOf(r)
	return h.Hash(lr)
}

// NullRef is the reference representing SQL NULL strings. It compares
// equal only to itself (grouping semantics), never to any real string.
const NullRef = vec.StrRef(1)

// Equal compares the strings behind a and b. When both are USSR-resident,
// uniqueness makes reference equality sufficient (Section IV-E's equal()).
func (st *Store) Equal(a, b vec.StrRef) bool {
	if a.InUSSR() && b.InUSSR() {
		st.EqualFast++
		return a == b
	}
	if a == b {
		return true // same handle, including NullRef==NullRef
	}
	if a == NullRef || b == NullRef {
		return false
	}
	st.EqualSlow++
	// Mixed backing: compare the heap bytes against the USSR words in
	// place, without materializing the resident string.
	if a.InUSSR() {
		return st.U.EqualBytes(a, st.heapBytes(b))
	}
	if b.InUSSR() {
		return st.U.EqualBytes(b, st.heapBytes(a))
	}
	return bytes.Equal(st.heapBytes(a), st.heapBytes(b))
}

func (st *Store) heapBytes(r vec.StrRef) []byte {
	if r == NullRef {
		return nil
	}
	h, lr := st.heapOf(r)
	return h.Bytes(lr)
}

// Raw returns the bytes of the string behind r without allocating when
// possible: heap strings alias the arena, USSR strings are materialized
// into scratch. The returned scratch (possibly grown) must be threaded
// into the next call; the data slice is only valid until then.
func (st *Store) Raw(r vec.StrRef, scratch []byte) (data, scratchOut []byte) {
	if r.InUSSR() {
		out := st.U.AppendBytes(scratch[:0], r)
		return out, out
	}
	if r == NullRef {
		return nil, scratch
	}
	h, lr := st.heapOf(r)
	return h.Bytes(lr), scratch
}

// EqualString compares the string behind r with a Go string.
func (st *Store) EqualString(r vec.StrRef, s string) bool {
	return bytes.Equal(st.rawBytes(r), []byte(s))
}

// Compare orders the strings behind a and b lexicographically.
func (st *Store) Compare(a, b vec.StrRef) int {
	if a.InUSSR() && b.InUSSR() && a == b {
		return 0
	}
	return bytes.Compare(st.rawBytes(a), st.rawBytes(b))
}

// HashOf hashes an untracked Go string with the engine hash function.
func HashOf(s string) uint64 { return strhash.HashString(s) }

func (st *Store) rawBytes(r vec.StrRef) []byte {
	if r.InUSSR() {
		return st.U.Bytes(r)
	}
	if r == NullRef {
		return nil
	}
	h, lr := st.heapOf(r)
	return h.Bytes(lr)
}

// MemoryBytes reports the string memory footprint: the heap arena plus the
// USSR's fixed region when enabled.
func (st *Store) MemoryBytes() int {
	n := st.Heap.Size()
	if st.U != nil {
		n += ussr.DataSlots*8 + ussr.Buckets*4
	}
	return n
}

// ResetCounters zeroes the fast/slow path counters.
func (st *Store) ResetCounters() {
	st.HashFast, st.HashSlow, st.EqualFast, st.EqualSlow = 0, 0, 0, 0
}
