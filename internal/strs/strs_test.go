package strs

import (
	"fmt"
	"strings"
	"testing"
)

func TestInternPrefersUSSR(t *testing.T) {
	st := NewStore(true)
	r := st.Intern("frequent")
	if !r.InUSSR() {
		t.Fatal("small string must land in the USSR")
	}
	if st.Get(r) != "frequent" {
		t.Error("round trip")
	}
	// A huge string falls back to the heap.
	big := strings.Repeat("B", 100_000)
	rb := st.Intern(big)
	if rb.InUSSR() {
		t.Fatal("100 kB string cannot be USSR-resident")
	}
	if st.Get(rb) != big {
		t.Error("heap round trip")
	}
}

func TestVanillaStoreNeverUsesUSSR(t *testing.T) {
	st := NewStore(false)
	r := st.Intern("anything")
	if r.InUSSR() {
		t.Fatal("vanilla store must heap-allocate")
	}
	r2 := st.Intern("anything")
	if r == r2 {
		t.Error("the heap performs no deduplication")
	}
	if !st.Equal(r, r2) {
		t.Error("equal content must compare equal across handles")
	}
}

func TestEqualFastPath(t *testing.T) {
	st := NewStore(true)
	a := st.Intern("x")
	b := st.Intern("x")
	c := st.Intern("y")
	st.ResetCounters()
	if !st.Equal(a, b) || st.Equal(a, c) {
		t.Fatal("equality results wrong")
	}
	if st.EqualFast != 2 || st.EqualSlow != 0 {
		t.Errorf("expected 2 fast comparisons, got fast=%d slow=%d", st.EqualFast, st.EqualSlow)
	}
}

func TestHashFastPath(t *testing.T) {
	st := NewStore(true)
	a := st.Intern("hashed")
	h := st.Intern(strings.Repeat("H", 50_000)) // heap-backed
	st.ResetCounters()
	if st.Hash(a) != HashOf("hashed") {
		t.Error("USSR hash mismatch")
	}
	if st.Hash(h) != HashOf(strings.Repeat("H", 50_000)) {
		t.Error("heap hash mismatch")
	}
	if st.HashFast != 1 || st.HashSlow != 1 {
		t.Errorf("counters: fast=%d slow=%d", st.HashFast, st.HashSlow)
	}
}

func TestCompare(t *testing.T) {
	st := NewStore(true)
	a, b := st.Intern("apple"), st.Intern("banana")
	if st.Compare(a, b) >= 0 || st.Compare(b, a) <= 0 || st.Compare(a, a) != 0 {
		t.Error("compare ordering")
	}
}

func TestEqualString(t *testing.T) {
	st := NewStore(true)
	r := st.Intern("constant")
	if !st.EqualString(r, "constant") || st.EqualString(r, "other") {
		t.Error("EqualString")
	}
}

func TestMixedBackingEquality(t *testing.T) {
	st := NewStore(true)
	// Fill the USSR so later strings overflow to the heap.
	for i := 0; i < 40_000; i++ {
		st.Intern(fmt.Sprintf("filler-%06d", i))
	}
	target := "resident-target"
	ru := st.Intern(target) // may or may not be resident by now
	rh := st.Heap.Put(target)
	if !st.Equal(ru, rh) {
		t.Error("equal strings with mixed backing must compare equal")
	}
	if st.Hash(ru) != st.Hash(rh) {
		t.Error("hash must agree across backings")
	}
	if st.Len(ru) != len(target) || st.Len(rh) != len(target) {
		t.Error("Len across backings")
	}
}

func TestMemoryBytes(t *testing.T) {
	vanilla := NewStore(false)
	before := vanilla.MemoryBytes()
	vanilla.Intern(strings.Repeat("m", 1000))
	if vanilla.MemoryBytes() <= before {
		t.Error("heap growth must show in MemoryBytes")
	}
	withU := NewStore(true)
	if withU.MemoryBytes() < 768*1024 {
		t.Error("USSR-enabled store must account its fixed 768 kB")
	}
}
