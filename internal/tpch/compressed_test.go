package tpch

import (
	"fmt"
	"testing"

	"ocht/internal/core"
	"ocht/internal/exec"
)

// TestAllQueriesCompressedMatchEager is the exec-layer acceptance check of
// holistic compressed execution: every TPC-H query, at every worker count,
// must return the same result whether scans emit encoded blocks (the
// default) or eagerly decompress everything (the EagerMaterialize oracle).
func TestAllQueriesCompressedMatchEager(t *testing.T) {
	cat := catFor(t)
	for q := 1; q <= 22; q++ {
		oracle := exec.NewQCtx(core.All())
		oracle.EagerMaterialize = true
		oracle.DisableZoneSkip = true
		want := resKey(Q(q, cat, oracle))
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("q%d/w%d", q, workers), func(t *testing.T) {
				qc := exec.NewQCtx(core.All())
				qc.Workers = workers
				got := resKey(Q(q, cat, qc))
				if len(got) != len(want) {
					t.Fatalf("compressed %d rows, eager oracle %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("row %d:\n  compressed %s\n  eager      %s", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestQueriesSkipBlocksAtScale runs the date-ranged queries on a catalog
// large enough for multi-block lineitem and checks the zone maps actually
// shed blocks without changing any answer.
func TestQueriesSkipBlocksAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-block catalog generation")
	}
	cat := Gen(0.02, 42)
	if b := cat.Table("lineitem").Col("l_shipdate").Blocks(); b < 2 {
		t.Skipf("lineitem has %d blocks; zone skipping needs at least 2", b)
	}
	// Q6 filters l_shipdate to one year; sorted-by-order date columns give
	// the zone maps real pruning power.
	skip := exec.NewQCtx(core.All())
	resSkip := Q(6, cat, skip)
	noskip := exec.NewQCtx(core.All())
	noskip.DisableZoneSkip = true
	resNoskip := Q(6, cat, noskip)
	a, b := resKey(resSkip), resKey(resNoskip)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: %s vs %s", i, a[i], b[i])
		}
	}
	if read := skip.Stats.Counter(exec.CtrBlocksRead); read == 0 {
		t.Fatal("no blocks read")
	}
	if skip.Stats.Counter(exec.CtrBytesDecompressed) > noskip.Stats.Counter(exec.CtrBytesDecompressed) {
		t.Fatal("zone skipping must never decompress more than reading everything")
	}
}
