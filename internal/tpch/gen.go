// Package tpch implements a from-scratch TPC-H data generator and all 22
// benchmark queries as plans over the vectorized engine, driving the
// paper's Figure 4, Figure 5 and Table II experiments.
//
// Substitutions vs. the official dbgen: money is stored as int64 cents,
// discount/tax as integer percent (0..10 / 0..8), dates as int32 yyyymmdd
// — a common engine-internal representation that keeps every predicate and
// aggregate integral. Comments are drawn from dbgen's word list; value
// distributions (uniform keys, per-order line counts, price formulas)
// follow the TPC-H specification.
package tpch

import (
	"fmt"
	"math/rand"
	"time"

	"ocht/internal/storage"
	"ocht/internal/vec"
)

// Scale factors: SF 1 is the official 1 GB scale.
const (
	regionRows   = 5
	nationRows   = 25
	supplierBase = 10_000
	customerBase = 150_000
	partBase     = 200_000
	ordersBase   = 1_500_000
)

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nations: name, region key (per the TPC-H spec).
var nations = []struct {
	name   string
	region int64
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var (
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX",
		"MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG",
		"JUMBO CASE", "JUMBO BOX", "JUMBO PACK", "JUMBO PKG", "WRAP CASE", "WRAP BOX"}
	typeSyl1  = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2  = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3  = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	nameWords = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood", "burnished",
		"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
		"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
		"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green",
		"grey", "honeydew", "hot", "hotpink", "indian", "ivory", "khaki",
		"lace", "lavender", "lawn", "lemon", "light", "lime", "linen",
		"magenta", "maroon", "medium", "metallic", "midnight", "mint", "misty",
		"moccasin", "navajo", "navy", "olive", "orange", "orchid", "pale",
		"papaya", "peach", "peru", "pink", "plum", "powder", "puff",
		"purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
		"sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow",
		"spring", "steel", "tan", "thistle", "tomato", "turquoise", "violet",
		"wheat", "white", "yellow"}
	commentWords = []string{"carefully", "quickly", "furiously", "slyly", "blithely",
		"regular", "final", "special", "pending", "ironic", "express", "bold",
		"even", "silent", "unusual", "daring", "requests", "deposits", "packages",
		"instructions", "accounts", "foxes", "ideas", "theodolites", "pinto",
		"beans", "dependencies", "excuses", "platelets", "asymptotes", "courts",
		"dolphins", "multipliers", "sauternes", "warthogs", "frets", "dinos",
		"attainments", "somas", "Tiresias", "nodes", "Customer", "Complaints",
		"sleep", "wake", "haggle", "nag", "use", "boost", "affix", "detect",
		"integrate", "cajole", "across", "against", "along", "among", "beyond"}
)

// Date converts (year, month, day) to the engine's yyyymmdd encoding.
func Date(y, m, d int) int64 { return int64(y)*10000 + int64(m)*100 + int64(d) }

// DateAdd adds days to a yyyymmdd date.
func DateAdd(yyyymmdd int64, days int) int64 {
	y := int(yyyymmdd / 10000)
	m := int(yyyymmdd / 100 % 100)
	d := int(yyyymmdd % 100)
	t := time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC).AddDate(0, 0, days)
	return Date(t.Year(), int(t.Month()), t.Day())
}

var epochStart = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

// dateOfDay converts a day offset from 1992-01-01 to yyyymmdd.
func dateOfDay(off int) int64 {
	t := epochStart.AddDate(0, 0, off)
	return Date(t.Year(), int(t.Month()), t.Day())
}

// totalDays spans 1992-01-01 .. 1998-08-02 (the TPC-H date range).
const totalDays = 2405

type gen struct {
	rng *rand.Rand
}

func (g *gen) comment(maxWords int) string {
	n := 2 + g.rng.Intn(maxWords)
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += commentWords[g.rng.Intn(len(commentWords))]
	}
	return s
}

func (g *gen) phone(nation int64) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", 10+nation,
		100+g.rng.Intn(900), 100+g.rng.Intn(900), 1000+g.rng.Intn(9000))
}

func (g *gen) partName() string {
	idx := g.rng.Perm(len(nameWords))[:5]
	s := ""
	for i, w := range idx {
		if i > 0 {
			s += " "
		}
		s += nameWords[w]
	}
	return s
}

// Gen generates the full TPC-H database at the given scale factor.
// Deterministic for a given (sf, seed).
func Gen(sf float64, seed int64) *storage.Catalog {
	g := &gen{rng: rand.New(rand.NewSource(seed))}
	cat := storage.NewCatalog()
	cat.Add(g.region())
	cat.Add(g.nation())
	nSupp := scaled(supplierBase, sf)
	nCust := scaled(customerBase, sf)
	nPart := scaled(partBase, sf)
	nOrd := scaled(ordersBase, sf)
	cat.Add(g.supplier(nSupp))
	cat.Add(g.customer(nCust))
	cat.Add(g.part(nPart))
	cat.Add(g.partsupp(nPart, nSupp))
	orders, lineitem := g.ordersAndLineitem(nOrd, nCust, nPart, nSupp)
	cat.Add(orders)
	cat.Add(lineitem)
	return cat
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 10 {
		n = 10
	}
	return n
}

func (g *gen) region() *storage.Table {
	k := storage.NewColumn("r_regionkey", vec.I64, false)
	n := storage.NewColumn("r_name", vec.Str, false)
	c := storage.NewColumn("r_comment", vec.Str, false)
	for i, name := range regionNames {
		k.AppendInt(int64(i))
		n.AppendString(name)
		c.AppendString(g.comment(10))
	}
	t := storage.NewTable("region", k, n, c)
	t.Seal()
	return t
}

func (g *gen) nation() *storage.Table {
	k := storage.NewColumn("n_nationkey", vec.I64, false)
	n := storage.NewColumn("n_name", vec.Str, false)
	r := storage.NewColumn("n_regionkey", vec.I64, false)
	c := storage.NewColumn("n_comment", vec.Str, false)
	for i, nat := range nations {
		k.AppendInt(int64(i))
		n.AppendString(nat.name)
		r.AppendInt(nat.region)
		c.AppendString(g.comment(10))
	}
	t := storage.NewTable("nation", k, n, r, c)
	t.Seal()
	return t
}

func (g *gen) supplier(n int) *storage.Table {
	sk := storage.NewColumn("s_suppkey", vec.I64, false)
	sn := storage.NewColumn("s_name", vec.Str, false)
	sa := storage.NewColumn("s_address", vec.Str, false)
	snk := storage.NewColumn("s_nationkey", vec.I64, false)
	sp := storage.NewColumn("s_phone", vec.Str, false)
	sb := storage.NewColumn("s_acctbal", vec.I64, false)
	sc := storage.NewColumn("s_comment", vec.Str, false)
	for i := 1; i <= n; i++ {
		nation := int64(g.rng.Intn(nationRows))
		sk.AppendInt(int64(i))
		sn.AppendString(fmt.Sprintf("Supplier#%09d", i))
		sa.AppendString(g.comment(3))
		snk.AppendInt(nation)
		sp.AppendString(g.phone(nation))
		sb.AppendInt(int64(g.rng.Intn(1_099_866)) - 99_999) // cents: -999.99..9998.66
		// ~0.05% of suppliers carry the Q16 complaint marker.
		if g.rng.Intn(2000) == 0 {
			sc.AppendString("wake Customer slyly Complaints haggle")
		} else {
			sc.AppendString(g.comment(12))
		}
	}
	t := storage.NewTable("supplier", sk, sn, sa, snk, sp, sb, sc)
	t.Seal()
	return t
}

func (g *gen) customer(n int) *storage.Table {
	ck := storage.NewColumn("c_custkey", vec.I64, false)
	cn := storage.NewColumn("c_name", vec.Str, false)
	ca := storage.NewColumn("c_address", vec.Str, false)
	cnk := storage.NewColumn("c_nationkey", vec.I64, false)
	cp := storage.NewColumn("c_phone", vec.Str, false)
	cb := storage.NewColumn("c_acctbal", vec.I64, false)
	cm := storage.NewColumn("c_mktsegment", vec.Str, false)
	cc := storage.NewColumn("c_comment", vec.Str, false)
	for i := 1; i <= n; i++ {
		nation := int64(g.rng.Intn(nationRows))
		ck.AppendInt(int64(i))
		cn.AppendString(fmt.Sprintf("Customer#%09d", i))
		ca.AppendString(g.comment(3))
		cnk.AppendInt(nation)
		cp.AppendString(g.phone(nation))
		cb.AppendInt(int64(g.rng.Intn(1_099_866)) - 99_999)
		cm.AppendString(segments[g.rng.Intn(len(segments))])
		cc.AppendString(g.comment(15))
	}
	t := storage.NewTable("customer", ck, cn, ca, cnk, cp, cb, cm, cc)
	t.Seal()
	return t
}

func (g *gen) part(n int) *storage.Table {
	pk := storage.NewColumn("p_partkey", vec.I64, false)
	pn := storage.NewColumn("p_name", vec.Str, false)
	pm := storage.NewColumn("p_mfgr", vec.Str, false)
	pb := storage.NewColumn("p_brand", vec.Str, false)
	pt := storage.NewColumn("p_type", vec.Str, false)
	ps := storage.NewColumn("p_size", vec.I32, false)
	pc := storage.NewColumn("p_container", vec.Str, false)
	pr := storage.NewColumn("p_retailprice", vec.I64, false)
	pcm := storage.NewColumn("p_comment", vec.Str, false)
	for i := 1; i <= n; i++ {
		mfgr := 1 + g.rng.Intn(5)
		brand := mfgr*10 + 1 + g.rng.Intn(5)
		pk.AppendInt(int64(i))
		pn.AppendString(g.partName())
		pm.AppendString(fmt.Sprintf("Manufacturer#%d", mfgr))
		pb.AppendString(fmt.Sprintf("Brand#%d", brand))
		pt.AppendString(typeSyl1[g.rng.Intn(6)] + " " + typeSyl2[g.rng.Intn(5)] + " " + typeSyl3[g.rng.Intn(5)])
		ps.AppendInt(int64(1 + g.rng.Intn(50)))
		pc.AppendString(containers[g.rng.Intn(len(containers))])
		pr.AppendInt(int64(90000 + ((i / 10) % 20001) + 100*(i%1000))) // spec price formula, cents
		pcm.AppendString(g.comment(5))
	}
	t := storage.NewTable("part", pk, pn, pm, pb, pt, ps, pc, pr, pcm)
	t.Seal()
	return t
}

func (g *gen) partsupp(nPart, nSupp int) *storage.Table {
	pk := storage.NewColumn("ps_partkey", vec.I64, false)
	sk := storage.NewColumn("ps_suppkey", vec.I64, false)
	aq := storage.NewColumn("ps_availqty", vec.I32, false)
	sc := storage.NewColumn("ps_supplycost", vec.I64, false)
	cm := storage.NewColumn("ps_comment", vec.Str, false)
	for i := 1; i <= nPart; i++ {
		for j := 0; j < 4; j++ {
			pk.AppendInt(int64(i))
			// The spec's supplier spreading formula keeps (part, supp)
			// pairs unique.
			sk.AppendInt(int64((i+j*((nSupp/4)+(i-1)/nSupp))%nSupp + 1))
			aq.AppendInt(int64(1 + g.rng.Intn(9999)))
			sc.AppendInt(int64(100 + g.rng.Intn(99901))) // 1.00..1000.00
			cm.AppendString(g.comment(12))
		}
	}
	t := storage.NewTable("partsupp", pk, sk, aq, sc, cm)
	t.Seal()
	return t
}

func (g *gen) ordersAndLineitem(nOrd, nCust, nPart, nSupp int) (*storage.Table, *storage.Table) {
	ok := storage.NewColumn("o_orderkey", vec.I64, false)
	oc := storage.NewColumn("o_custkey", vec.I64, false)
	os := storage.NewColumn("o_orderstatus", vec.Str, false)
	ot := storage.NewColumn("o_totalprice", vec.I64, false)
	od := storage.NewColumn("o_orderdate", vec.I32, false)
	op := storage.NewColumn("o_orderpriority", vec.Str, false)
	ock := storage.NewColumn("o_clerk", vec.Str, false)
	osp := storage.NewColumn("o_shippriority", vec.I32, false)
	ocm := storage.NewColumn("o_comment", vec.Str, false)

	lok := storage.NewColumn("l_orderkey", vec.I64, false)
	lpk := storage.NewColumn("l_partkey", vec.I64, false)
	lsk := storage.NewColumn("l_suppkey", vec.I64, false)
	lln := storage.NewColumn("l_linenumber", vec.I32, false)
	lq := storage.NewColumn("l_quantity", vec.I32, false)
	lep := storage.NewColumn("l_extendedprice", vec.I64, false)
	ld := storage.NewColumn("l_discount", vec.I32, false)
	lt := storage.NewColumn("l_tax", vec.I32, false)
	lrf := storage.NewColumn("l_returnflag", vec.Str, false)
	lls := storage.NewColumn("l_linestatus", vec.Str, false)
	lsd := storage.NewColumn("l_shipdate", vec.I32, false)
	lcd := storage.NewColumn("l_commitdate", vec.I32, false)
	lrd := storage.NewColumn("l_receiptdate", vec.I32, false)
	lsi := storage.NewColumn("l_shipinstruct", vec.Str, false)
	lsm := storage.NewColumn("l_shipmode", vec.Str, false)
	lcm := storage.NewColumn("l_comment", vec.Str, false)

	currentDate := Date(1995, 6, 17)
	for i := 1; i <= nOrd; i++ {
		cust := int64(1 + g.rng.Intn(nCust))
		ordDay := g.rng.Intn(totalDays - 151)
		ordDate := dateOfDay(ordDay)
		nLines := 1 + g.rng.Intn(7)
		var total int64
		allF, allO := true, true

		for ln := 1; ln <= nLines; ln++ {
			part := int64(1 + g.rng.Intn(nPart))
			supp := int64(1 + g.rng.Intn(nSupp))
			qty := int64(1 + g.rng.Intn(50))
			price := (90000 + (part/10)%20001 + 100*(part%1000)) * qty / 100
			disc := int64(g.rng.Intn(11)) // 0..10 percent
			tax := int64(g.rng.Intn(9))   // 0..8 percent
			shipDay := ordDay + 1 + g.rng.Intn(121)
			commitDay := ordDay + 30 + g.rng.Intn(61)
			receiptDay := shipDay + 1 + g.rng.Intn(30)
			shipDate := dateOfDay(shipDay)

			var rf string
			if dateOfDay(receiptDay) <= currentDate {
				if g.rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			} else {
				rf = "N"
			}
			var ls string
			if shipDate > currentDate {
				ls = "O"
				allF = false
			} else {
				ls = "F"
				allO = false
			}

			lok.AppendInt(int64(i))
			lpk.AppendInt(part)
			lsk.AppendInt(supp)
			lln.AppendInt(int64(ln))
			lq.AppendInt(qty)
			lep.AppendInt(price)
			ld.AppendInt(disc)
			lt.AppendInt(tax)
			lrf.AppendString(rf)
			lls.AppendString(ls)
			lsd.AppendInt(shipDate)
			lcd.AppendInt(dateOfDay(commitDay))
			lrd.AppendInt(dateOfDay(receiptDay))
			lsi.AppendString(instructs[g.rng.Intn(len(instructs))])
			lsm.AppendString(shipModes[g.rng.Intn(len(shipModes))])
			lcm.AppendString(g.comment(6))
			total += price * (100 - disc) * (100 + tax) / 10000
		}

		status := "P"
		if allF {
			status = "F"
		} else if allO {
			status = "O"
		}
		ok.AppendInt(int64(i))
		oc.AppendInt(cust)
		os.AppendString(status)
		ot.AppendInt(total)
		od.AppendInt(ordDate)
		op.AppendString(priorities[g.rng.Intn(len(priorities))])
		ock.AppendString(fmt.Sprintf("Clerk#%09d", 1+g.rng.Intn(1000)))
		osp.AppendInt(0)
		// ~1% of orders carry the Q13 "special requests" marker.
		if g.rng.Intn(100) == 0 {
			ocm.AppendString("dolphins special wake requests haggle")
		} else {
			ocm.AppendString(g.comment(10))
		}
	}

	orders := storage.NewTable("orders", ok, oc, os, ot, od, op, ock, osp, ocm)
	orders.Seal()
	lineitem := storage.NewTable("lineitem",
		lok, lpk, lsk, lln, lq, lep, ld, lt, lrf, lls, lsd, lcd, lrd, lsi, lsm, lcm)
	lineitem.Seal()
	return orders, lineitem
}
