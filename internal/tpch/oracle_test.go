package tpch

import (
	"testing"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/i128"
	"ocht/internal/sql"
	"ocht/internal/strs"
	"ocht/internal/vec"
)

// columnInts reads an integer column straight from storage, bypassing the
// engine.
func columnInts(t *testing.T, table, col string) []int64 {
	t.Helper()
	c := catFor(t).Table(table).Col(col)
	st := strs.NewStore(false)
	out := vec.New(c.Type, 1<<16)
	var vals []int64
	for b := 0; b < c.Blocks(); b++ {
		n := c.ScanBlock(b, out, st)
		for i := 0; i < n; i++ {
			vals = append(vals, out.Int64At(i))
		}
	}
	return vals
}

func columnStrs(t *testing.T, table, col string) []string {
	t.Helper()
	c := catFor(t).Table(table).Col(col)
	st := strs.NewStore(false)
	out := vec.New(vec.Str, 1<<16)
	var vals []string
	for b := 0; b < c.Blocks(); b++ {
		n := c.ScanBlock(b, out, st)
		for i := 0; i < n; i++ {
			vals = append(vals, st.Get(out.Str[i]))
		}
	}
	return vals
}

// TestQ6Oracle recomputes Q6 with a direct scalar loop over storage and
// compares against the engine under full optimization.
func TestQ6Oracle(t *testing.T) {
	ship := columnInts(t, "lineitem", "l_shipdate")
	disc := columnInts(t, "lineitem", "l_discount")
	qty := columnInts(t, "lineitem", "l_quantity")
	price := columnInts(t, "lineitem", "l_extendedprice")
	var want int64
	for i := range ship {
		if ship[i] >= 19940101 && ship[i] < 19950101 &&
			disc[i] >= 5 && disc[i] <= 7 && qty[i] < 24 {
			want += price[i] * disc[i]
		}
	}
	res := Q(6, catFor(t), exec.NewQCtx(core.All()))
	got := res.Rows[0][0]
	var gotV int64
	if got.Typ == vec.I128 {
		gotV = got.I128.Int64()
	} else {
		gotV = got.I
	}
	if gotV != want {
		t.Fatalf("Q6 = %d, oracle %d", gotV, want)
	}
}

// TestQ1Oracle recomputes the Q1 sums per (returnflag, linestatus) group.
func TestQ1Oracle(t *testing.T) {
	ship := columnInts(t, "lineitem", "l_shipdate")
	qty := columnInts(t, "lineitem", "l_quantity")
	price := columnInts(t, "lineitem", "l_extendedprice")
	disc := columnInts(t, "lineitem", "l_discount")
	tax := columnInts(t, "lineitem", "l_tax")
	rf := columnStrs(t, "lineitem", "l_returnflag")
	ls := columnStrs(t, "lineitem", "l_linestatus")

	cutoff := DateAdd(Date(1998, 12, 1), -90)
	type acc struct {
		qty, base i128.Int
		disc, chg i128.Int
		cnt       int64
	}
	oracle := map[string]*acc{}
	for i := range ship {
		if ship[i] > cutoff {
			continue
		}
		k := rf[i] + "|" + ls[i]
		a := oracle[k]
		if a == nil {
			a = &acc{}
			oracle[k] = a
		}
		a.qty = i128.AddInt64(a.qty, qty[i])
		a.base = i128.AddInt64(a.base, price[i])
		dp := price[i] * (100 - disc[i])
		a.disc = i128.AddInt64(a.disc, dp)
		a.chg = i128.AddInt64(a.chg, dp*(100+tax[i]))
		a.cnt++
	}

	res := Q(1, catFor(t), exec.NewQCtx(core.All()))
	if len(res.Rows) != len(oracle) {
		t.Fatalf("groups: %d vs oracle %d", len(res.Rows), len(oracle))
	}
	asI128 := func(v exec.Value) i128.Int {
		if v.Typ == vec.I128 {
			return v.I128
		}
		return i128.FromInt64(v.I)
	}
	for _, row := range res.Rows {
		k := row[0].S + "|" + row[1].S
		a := oracle[k]
		if a == nil {
			t.Fatalf("unknown group %q", k)
		}
		if asI128(row[2]) != a.qty || asI128(row[3]) != a.base ||
			asI128(row[4]) != a.disc || asI128(row[5]) != a.chg {
			t.Fatalf("group %q sums differ", k)
		}
		if row[9].I != a.cnt {
			t.Fatalf("group %q count %d want %d", k, row[9].I, a.cnt)
		}
	}
}

// TestQ6ViaSQLAgrees cross-checks the SQL frontend against the plan-built
// Q6: same predicate, same revenue.
func TestQ6ViaSQLAgrees(t *testing.T) {
	planRes := Q(6, catFor(t), exec.NewQCtx(core.All()))
	sqlRes, err := sql.Run(`
		SELECT SUM(l_extendedprice * l_discount) AS revenue
		FROM lineitem
		WHERE l_shipdate >= 19940101 AND l_shipdate < 19950101
		  AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24`,
		catFor(t), exec.NewQCtx(core.All()))
	if err != nil {
		t.Fatal(err)
	}
	if planRes.Rows[0][0].String() != sqlRes.Rows[0][0].String() {
		t.Fatalf("SQL %s != plan %s", sqlRes.Rows[0][0], planRes.Rows[0][0])
	}
}
