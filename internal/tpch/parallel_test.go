package tpch

import (
	"fmt"
	"testing"

	"ocht/internal/core"
	"ocht/internal/exec"
)

// TestAllQueriesParallelMatchSerial checks every TPC-H query at several
// worker counts against the serial oracle, under both the vanilla and the
// fully optimized engine. Group emission order after a parallel merge is
// unspecified, so rows are compared as sorted rendered strings.
func TestAllQueriesParallelMatchSerial(t *testing.T) {
	cat := catFor(t)
	flagSets := []struct {
		name  string
		flags core.Flags
	}{
		{"vanilla", core.Vanilla()},
		{"all", core.All()},
	}
	for _, fs := range flagSets {
		for q := 1; q <= 22; q++ {
			serial := resKey(Q(q, cat, exec.NewQCtx(fs.flags)))
			for _, workers := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("%s/q%d/w%d", fs.name, q, workers), func(t *testing.T) {
					qc := exec.NewQCtx(fs.flags)
					qc.Workers = workers
					got := resKey(Q(q, cat, qc))
					if len(got) != len(serial) {
						t.Fatalf("row count %d, serial %d", len(got), len(serial))
					}
					for i := range got {
						if got[i] != serial[i] {
							t.Fatalf("row %d:\n  parallel %s\n  serial   %s", i, got[i], serial[i])
						}
					}
				})
			}
		}
	}
}

// TestWorkersOneBitIdentical pins the workers<=1 path to the serial
// engine: the parallel driver must not be entered at all, so results match
// in emission order, not just as sets.
func TestWorkersOneBitIdentical(t *testing.T) {
	cat := catFor(t)
	for q := 1; q <= 22; q++ {
		serial := Q(q, cat, exec.NewQCtx(core.All()))
		qc := exec.NewQCtx(core.All())
		qc.Workers = 1
		got := Q(q, cat, qc)
		if len(got.Rows) != len(serial.Rows) {
			t.Fatalf("q%d: row count %d vs %d", q, len(got.Rows), len(serial.Rows))
		}
		for i := range got.Rows {
			for c := range got.Rows[i] {
				if got.Rows[i][c].String() != serial.Rows[i][c].String() {
					t.Fatalf("q%d row %d col %d: %s vs %s",
						q, i, c, got.Rows[i][c], serial.Rows[i][c])
				}
			}
		}
	}
}
