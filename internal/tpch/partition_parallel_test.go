package tpch

import (
	"fmt"
	"testing"

	"ocht/internal/core"
	"ocht/internal/exec"
)

// TestAllQueriesPartitionBitsParallelMatchSerial drives every TPC-H query
// through the parallel engine at forced radix widths — monolithic (0,
// always the agg.Merge path), 3 and 6 (the owner-computes partition-wise
// path) — at several worker counts, against the adaptive serial oracle.
// Emission order is unspecified across merge strategies, so rows compare
// as sorted rendered strings.
func TestAllQueriesPartitionBitsParallelMatchSerial(t *testing.T) {
	cat := catFor(t)
	defer func(old int) { exec.DefaultPartitionBits = old }(exec.DefaultPartitionBits)
	for q := 1; q <= 22; q++ {
		exec.DefaultPartitionBits = -1
		serial := resKey(Q(q, cat, exec.NewQCtx(core.All())))
		for _, bits := range []int{0, 3, 6} {
			for _, workers := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("q%d/bits%d/w%d", q, bits, workers), func(t *testing.T) {
					exec.DefaultPartitionBits = bits
					qc := exec.NewQCtx(core.All())
					qc.Workers = workers
					got := resKey(Q(q, cat, qc))
					if len(got) != len(serial) {
						t.Fatalf("row count %d, serial %d", len(got), len(serial))
					}
					for i := range got {
						if got[i] != serial[i] {
							t.Fatalf("row %d:\n  parallel %s\n  serial   %s", i, got[i], serial[i])
						}
					}
				})
			}
		}
	}
}
