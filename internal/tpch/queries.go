package tpch

import (
	"context"
	"fmt"

	"ocht/internal/agg"
	"ocht/internal/exec"
	"ocht/internal/storage"
)

// Q runs TPC-H query n (1..22) against the catalog under the given query
// context and returns its (ordered) result. Each query is expressed as an
// operator plan over the vectorized engine; monetary values are cents,
// revenue terms like extendedprice*(1-discount) are computed in integer
// cent-percent units, which preserves grouping, ordering and relative
// comparisons across all engine configurations.
func Q(n int, cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	if n < 1 || n > 22 {
		panic(fmt.Sprintf("tpch: no query %d", n))
	}
	return queryFuncs[n-1](cat, qc)
}

// QContext runs query n under a cancellable context: when ctx expires or
// is canceled mid-execution the engine unwinds (workers included) and
// QContext returns exec.ErrCanceled instead of a result.
func QContext(ctx context.Context, n int, cat *storage.Catalog, qc *exec.QCtx) (res *exec.Result, err error) {
	qc.AttachContext(ctx)
	defer qc.AttachContext(nil)
	err = exec.CatchCancel(func() { res = Q(n, cat, qc) })
	if err != nil && ctx != nil && ctx.Err() != nil {
		err = fmt.Errorf("%w: %v", exec.ErrCanceled, ctx.Err())
	}
	return res, err
}

var queryFuncs = [22]func(*storage.Catalog, *exec.QCtx) *exec.Result{
	q1, q2, q3, q4, q5, q6, q7, q8, q9, q10, q11,
	q12, q13, q14, q15, q16, q17, q18, q19, q20, q21, q22,
}

// Shorthands.
type e = exec.Expr

var (
	col = exec.Col
	ci  = exec.Int
	cs  = exec.Str
)

// revenue is l_extendedprice * (100 - l_discount), in cent-percent.
func revenue(m []exec.Meta) *e {
	return exec.Mul(col(m, "l_extendedprice"), exec.Sub(ci(100), col(m, "l_discount")))
}

// year extracts the year from a yyyymmdd date column.
func year(d *e) *e { return exec.Div(d, ci(10000)) }

// semiRegion narrows a nation scan to one region.
func nationsInRegion(cat *storage.Catalog, qc *exec.QCtx, region string) exec.Op {
	r := exec.NewScan(cat.Table("region"), "r_regionkey", "r_name")
	rm := r.Meta()
	rf := exec.NewFilter(r, exec.Eq(col(rm, "r_name"), cs(region)))
	n := exec.NewScan(cat.Table("nation"), "n_nationkey", "n_name", "n_regionkey")
	return exec.NewHashJoin(exec.Semi, n, rf, []string{"n_regionkey"}, []string{"r_regionkey"}, nil)
}

// q1: pricing summary report.
func q1(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	l := exec.NewScan(cat.Table("lineitem"),
		"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
		"l_discount", "l_tax", "l_shipdate")
	m := l.Meta()
	f := exec.NewFilter(l, exec.Le(col(m, "l_shipdate"), ci(DateAdd(Date(1998, 12, 1), -90))))
	disc := revenue(m)
	charge := exec.Mul(disc, exec.Add(ci(100), col(m, "l_tax")))
	h := exec.NewHashAgg(f,
		[]string{"l_returnflag", "l_linestatus"},
		[]*e{col(m, "l_returnflag"), col(m, "l_linestatus")},
		[]exec.AggExpr{
			{Func: agg.Sum, Arg: col(m, "l_quantity"), Name: "sum_qty"},
			{Func: agg.Sum, Arg: col(m, "l_extendedprice"), Name: "sum_base_price"},
			{Func: agg.Sum, Arg: disc, Name: "sum_disc_price"},
			{Func: agg.Sum, Arg: charge, Name: "sum_charge"},
			{Func: exec.Avg, Arg: col(m, "l_quantity"), Name: "avg_qty"},
			{Func: exec.Avg, Arg: col(m, "l_extendedprice"), Name: "avg_price"},
			{Func: exec.Avg, Arg: col(m, "l_discount"), Name: "avg_disc"},
			{Func: agg.CountStar, Name: "count_order"},
		})
	return exec.Run(qc, h).OrderBy(exec.SortKey{Col: 0}, exec.SortKey{Col: 1})
}

// q2: minimum cost supplier.
func q2(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	// Subquery: min supply cost per part among EUROPE suppliers.
	suppEU := func() exec.Op {
		s := exec.NewScan(cat.Table("supplier"),
			"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment")
		return exec.NewHashJoin(exec.Semi, s, nationsInRegion(cat, qc, "EUROPE"),
			[]string{"s_nationkey"}, []string{"n_nationkey"}, nil)
	}
	ps1 := exec.NewScan(cat.Table("partsupp"), "ps_partkey", "ps_suppkey", "ps_supplycost")
	psEU := exec.NewHashJoin(exec.Semi, ps1, suppEU(),
		[]string{"ps_suppkey"}, []string{"s_suppkey"}, nil)
	pm := psEU.Meta()
	minCost := exec.NewHashAgg(psEU,
		[]string{"mc_partkey"}, []*e{col(pm, "ps_partkey")},
		[]exec.AggExpr{{Func: agg.Min, Arg: col(pm, "ps_supplycost"), Name: "min_cost"}})

	// Main: parts of size 15, type %BRASS, joined with their EUROPE
	// suppliers at exactly the minimum cost.
	p := exec.NewScan(cat.Table("part"), "p_partkey", "p_mfgr", "p_size", "p_type")
	pmm := p.Meta()
	pf := exec.NewFilter(p, exec.And(
		exec.Eq(col(pmm, "p_size"), ci(15)),
		exec.Like(col(pmm, "p_type"), "%BRASS")))
	ps2 := exec.NewScan(cat.Table("partsupp"), "ps_partkey", "ps_suppkey", "ps_supplycost")
	j1 := exec.NewHashJoin(exec.Inner, ps2, pf,
		[]string{"ps_partkey"}, []string{"p_partkey"}, []string{"p_mfgr"})
	j2 := exec.NewHashJoin(exec.Inner, j1, suppEU(),
		[]string{"ps_suppkey"}, []string{"s_suppkey"},
		[]string{"s_acctbal", "s_name", "s_address", "s_nationkey", "s_phone", "s_comment"})
	n := exec.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
	j3 := exec.NewHashJoin(exec.Inner, j2, n,
		[]string{"s_nationkey"}, []string{"n_nationkey"}, []string{"n_name"})
	j4 := exec.NewHashJoin(exec.Semi, j3, minCost,
		[]string{"ps_partkey", "ps_supplycost"}, []string{"mc_partkey", "min_cost"}, nil)
	jm := j4.Meta()
	out := exec.NewProject(j4,
		[]string{"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr", "s_address", "s_phone", "s_comment"},
		[]*e{col(jm, "s_acctbal"), col(jm, "s_name"), col(jm, "n_name"), col(jm, "ps_partkey"),
			col(jm, "p_mfgr"), col(jm, "s_address"), col(jm, "s_phone"), col(jm, "s_comment")})
	return exec.Run(qc, out).OrderBy(
		exec.SortKey{Col: 0, Desc: true}, exec.SortKey{Col: 2},
		exec.SortKey{Col: 1}, exec.SortKey{Col: 3}).Limit(100)
}

// q3: shipping priority.
func q3(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	c := exec.NewScan(cat.Table("customer"), "c_custkey", "c_mktsegment")
	cm := c.Meta()
	cf := exec.NewFilter(c, exec.Eq(col(cm, "c_mktsegment"), cs("BUILDING")))
	o := exec.NewScan(cat.Table("orders"), "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority")
	om := o.Meta()
	of := exec.NewFilter(o, exec.Lt(col(om, "o_orderdate"), ci(Date(1995, 3, 15))))
	oc := exec.NewHashJoin(exec.Semi, of, cf, []string{"o_custkey"}, []string{"c_custkey"}, nil)
	l := exec.NewScan(cat.Table("lineitem"), "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate")
	lm := l.Meta()
	lf := exec.NewFilter(l, exec.Gt(col(lm, "l_shipdate"), ci(Date(1995, 3, 15))))
	j := exec.NewHashJoin(exec.Inner, lf, oc,
		[]string{"l_orderkey"}, []string{"o_orderkey"}, []string{"o_orderdate", "o_shippriority"})
	jm := j.Meta()
	h := exec.NewHashAgg(j,
		[]string{"l_orderkey", "o_orderdate", "o_shippriority"},
		[]*e{col(jm, "l_orderkey"), col(jm, "o_orderdate"), col(jm, "o_shippriority")},
		[]exec.AggExpr{{Func: agg.Sum, Arg: revenue(jm), Name: "revenue"}})
	return exec.Run(qc, h).OrderBy(exec.SortKey{Col: 3, Desc: true}, exec.SortKey{Col: 1}).Limit(10)
}

// q4: order priority checking.
func q4(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	o := exec.NewScan(cat.Table("orders"), "o_orderkey", "o_orderdate", "o_orderpriority")
	om := o.Meta()
	of := exec.NewFilter(o, exec.And(
		exec.Ge(col(om, "o_orderdate"), ci(Date(1993, 7, 1))),
		exec.Lt(col(om, "o_orderdate"), ci(Date(1993, 10, 1)))))
	l := exec.NewScan(cat.Table("lineitem"), "l_orderkey", "l_commitdate", "l_receiptdate")
	lm := l.Meta()
	lf := exec.NewFilter(l, exec.Lt(col(lm, "l_commitdate"), col(lm, "l_receiptdate")))
	semi := exec.NewHashJoin(exec.Semi, of, lf, []string{"o_orderkey"}, []string{"l_orderkey"}, nil)
	sm := semi.Meta()
	h := exec.NewHashAgg(semi,
		[]string{"o_orderpriority"}, []*e{col(sm, "o_orderpriority")},
		[]exec.AggExpr{{Func: agg.CountStar, Name: "order_count"}})
	return exec.Run(qc, h).OrderBy(exec.SortKey{Col: 0})
}

// q5: local supplier volume.
func q5(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	o := exec.NewScan(cat.Table("orders"), "o_orderkey", "o_custkey", "o_orderdate")
	om := o.Meta()
	of := exec.NewFilter(o, exec.And(
		exec.Ge(col(om, "o_orderdate"), ci(Date(1994, 1, 1))),
		exec.Lt(col(om, "o_orderdate"), ci(Date(1995, 1, 1)))))
	c := exec.NewScan(cat.Table("customer"), "c_custkey", "c_nationkey")
	oc := exec.NewHashJoin(exec.Inner, of, c,
		[]string{"o_custkey"}, []string{"c_custkey"}, []string{"c_nationkey"})
	l := exec.NewScan(cat.Table("lineitem"), "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount")
	lo := exec.NewHashJoin(exec.Inner, l, oc,
		[]string{"l_orderkey"}, []string{"o_orderkey"}, []string{"c_nationkey"})
	s := exec.NewScan(cat.Table("supplier"), "s_suppkey", "s_nationkey")
	ls := exec.NewHashJoin(exec.Inner, lo, s,
		[]string{"l_suppkey"}, []string{"s_suppkey"}, []string{"s_nationkey"})
	lsm := ls.Meta()
	same := exec.NewFilter(ls, exec.Eq(col(lsm, "c_nationkey"), col(lsm, "s_nationkey")))
	nAsia := nationsInRegion(cat, qc, "ASIA")
	j := exec.NewHashJoin(exec.Inner, same, nAsia,
		[]string{"s_nationkey"}, []string{"n_nationkey"}, []string{"n_name"})
	jm := j.Meta()
	h := exec.NewHashAgg(j,
		[]string{"n_name"}, []*e{col(jm, "n_name")},
		[]exec.AggExpr{{Func: agg.Sum, Arg: revenue(jm), Name: "revenue"}})
	return exec.Run(qc, h).OrderBy(exec.SortKey{Col: 1, Desc: true})
}

// q6: forecasting revenue change.
func q6(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	l := exec.NewScan(cat.Table("lineitem"), "l_shipdate", "l_discount", "l_quantity", "l_extendedprice")
	m := l.Meta()
	f := exec.NewFilter(l, exec.And(exec.And(
		exec.And(
			exec.Ge(col(m, "l_shipdate"), ci(Date(1994, 1, 1))),
			exec.Lt(col(m, "l_shipdate"), ci(Date(1995, 1, 1)))),
		exec.And(
			exec.Ge(col(m, "l_discount"), ci(5)),
			exec.Le(col(m, "l_discount"), ci(7)))),
		exec.Lt(col(m, "l_quantity"), ci(24))))
	h := exec.NewHashAgg(f, nil, nil, []exec.AggExpr{
		{Func: agg.Sum, Arg: exec.Mul(col(m, "l_extendedprice"), col(m, "l_discount")), Name: "revenue"},
	})
	return exec.Run(qc, h)
}

// q7: volume shipping between FRANCE and GERMANY.
func q7(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	l := exec.NewScan(cat.Table("lineitem"),
		"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate")
	lm := l.Meta()
	lf := exec.NewFilter(l, exec.And(
		exec.Ge(col(lm, "l_shipdate"), ci(Date(1995, 1, 1))),
		exec.Le(col(lm, "l_shipdate"), ci(Date(1996, 12, 31)))))
	s := exec.NewScan(cat.Table("supplier"), "s_suppkey", "s_nationkey")
	ls := exec.NewHashJoin(exec.Inner, lf, s,
		[]string{"l_suppkey"}, []string{"s_suppkey"}, []string{"s_nationkey"})
	o := exec.NewScan(cat.Table("orders"), "o_orderkey", "o_custkey")
	lso := exec.NewHashJoin(exec.Inner, ls, o,
		[]string{"l_orderkey"}, []string{"o_orderkey"}, []string{"o_custkey"})
	c := exec.NewScan(cat.Table("customer"), "c_custkey", "c_nationkey")
	lsoc := exec.NewHashJoin(exec.Inner, lso, c,
		[]string{"o_custkey"}, []string{"c_custkey"}, []string{"c_nationkey"})
	n1 := exec.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
	j1 := exec.NewHashJoin(exec.Inner, lsoc, n1,
		[]string{"s_nationkey"}, []string{"n_nationkey"}, []string{"n_name"})
	j1p := exec.NewProject(j1, append(namesOf(j1.Meta()[:len(j1.Meta())-1]), "supp_nation"),
		append(colsOf(j1.Meta()[:len(j1.Meta())-1], j1.Meta()), col(j1.Meta(), "n_name")))
	n2 := exec.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
	j2 := exec.NewHashJoin(exec.Inner, j1p, n2,
		[]string{"c_nationkey"}, []string{"n_nationkey"}, []string{"n_name"})
	j2m := j2.Meta()
	pair := exec.NewFilter(j2, exec.Or(
		exec.And(exec.Eq(col(j2m, "supp_nation"), cs("FRANCE")), exec.Eq(col(j2m, "n_name"), cs("GERMANY"))),
		exec.And(exec.Eq(col(j2m, "supp_nation"), cs("GERMANY")), exec.Eq(col(j2m, "n_name"), cs("FRANCE")))))
	h := exec.NewHashAgg(pair,
		[]string{"supp_nation", "cust_nation", "l_year"},
		[]*e{col(j2m, "supp_nation"), col(j2m, "n_name"), year(col(j2m, "l_shipdate"))},
		[]exec.AggExpr{{Func: agg.Sum, Arg: revenue(j2m), Name: "revenue"}})
	return exec.Run(qc, h).OrderBy(exec.SortKey{Col: 0}, exec.SortKey{Col: 1}, exec.SortKey{Col: 2})
}

func namesOf(meta []exec.Meta) []string {
	out := make([]string, len(meta))
	for i, m := range meta {
		out[i] = m.Name
	}
	return out
}

func colsOf(meta []exec.Meta, full []exec.Meta) []*e {
	out := make([]*e, len(meta))
	for i, m := range meta {
		out[i] = col(full, m.Name)
	}
	return out
}

// q8: national market share.
func q8(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	p := exec.NewScan(cat.Table("part"), "p_partkey", "p_type")
	pm := p.Meta()
	pf := exec.NewFilter(p, exec.Eq(col(pm, "p_type"), cs("ECONOMY ANODIZED STEEL")))
	l := exec.NewScan(cat.Table("lineitem"),
		"l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount")
	lp := exec.NewHashJoin(exec.Inner, l, pf, []string{"l_partkey"}, []string{"p_partkey"}, nil)
	o := exec.NewScan(cat.Table("orders"), "o_orderkey", "o_custkey", "o_orderdate")
	om := o.Meta()
	of := exec.NewFilter(o, exec.And(
		exec.Ge(col(om, "o_orderdate"), ci(Date(1995, 1, 1))),
		exec.Le(col(om, "o_orderdate"), ci(Date(1996, 12, 31)))))
	lpo := exec.NewHashJoin(exec.Inner, lp, of,
		[]string{"l_orderkey"}, []string{"o_orderkey"}, []string{"o_custkey", "o_orderdate"})
	c := exec.NewScan(cat.Table("customer"), "c_custkey", "c_nationkey")
	lpoc := exec.NewHashJoin(exec.Inner, lpo, c,
		[]string{"o_custkey"}, []string{"c_custkey"}, []string{"c_nationkey"})
	// Customer nation must be in AMERICA.
	am := nationsInRegion(cat, qc, "AMERICA")
	lpocn := exec.NewHashJoin(exec.Semi, lpoc, am,
		[]string{"c_nationkey"}, []string{"n_nationkey"}, nil)
	s := exec.NewScan(cat.Table("supplier"), "s_suppkey", "s_nationkey")
	full := exec.NewHashJoin(exec.Inner, lpocn, s,
		[]string{"l_suppkey"}, []string{"s_suppkey"}, []string{"s_nationkey"})
	n2 := exec.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
	withNation := exec.NewHashJoin(exec.Inner, full, n2,
		[]string{"s_nationkey"}, []string{"n_nationkey"}, []string{"n_name"})
	wm := withNation.Meta()
	vol := revenue(wm)
	brazil := exec.Case(exec.Eq(col(wm, "n_name"), cs("BRAZIL")), vol, ci(0))
	h := exec.NewHashAgg(withNation,
		[]string{"o_year"}, []*e{year(col(wm, "o_orderdate"))},
		[]exec.AggExpr{
			{Func: agg.Sum, Arg: brazil, Name: "brazil_vol"},
			{Func: agg.Sum, Arg: vol, Name: "total_vol"},
		})
	hm := h.Meta()
	share := exec.NewProject(h, []string{"o_year", "mkt_share"},
		[]*e{col(hm, "o_year"),
			exec.Div(exec.ToF64(col(hm, "brazil_vol")), exec.ToF64(col(hm, "total_vol")))})
	return exec.Run(qc, share).OrderBy(exec.SortKey{Col: 0})
}

// q9: product type profit measure.
func q9(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	p := exec.NewScan(cat.Table("part"), "p_partkey", "p_name")
	pm := p.Meta()
	pf := exec.NewFilter(p, exec.Like(col(pm, "p_name"), "%green%"))
	l := exec.NewScan(cat.Table("lineitem"),
		"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount")
	lp := exec.NewHashJoin(exec.Inner, l, pf, []string{"l_partkey"}, []string{"p_partkey"}, nil)
	ps := exec.NewScan(cat.Table("partsupp"), "ps_partkey", "ps_suppkey", "ps_supplycost")
	lps := exec.NewHashJoin(exec.Inner, lp, ps,
		[]string{"l_partkey", "l_suppkey"}, []string{"ps_partkey", "ps_suppkey"},
		[]string{"ps_supplycost"})
	s := exec.NewScan(cat.Table("supplier"), "s_suppkey", "s_nationkey")
	lpss := exec.NewHashJoin(exec.Inner, lps, s,
		[]string{"l_suppkey"}, []string{"s_suppkey"}, []string{"s_nationkey"})
	o := exec.NewScan(cat.Table("orders"), "o_orderkey", "o_orderdate")
	lpsso := exec.NewHashJoin(exec.Inner, lpss, o,
		[]string{"l_orderkey"}, []string{"o_orderkey"}, []string{"o_orderdate"})
	n := exec.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
	full := exec.NewHashJoin(exec.Inner, lpsso, n,
		[]string{"s_nationkey"}, []string{"n_nationkey"}, []string{"n_name"})
	fm := full.Meta()
	// profit = extprice*(100-disc) - supplycost*qty*100, cent-percent.
	profit := exec.Sub(revenue(fm),
		exec.Mul(exec.Mul(col(fm, "ps_supplycost"), col(fm, "l_quantity")), ci(100)))
	h := exec.NewHashAgg(full,
		[]string{"nation", "o_year"},
		[]*e{col(fm, "n_name"), year(col(fm, "o_orderdate"))},
		[]exec.AggExpr{{Func: agg.Sum, Arg: profit, Name: "sum_profit"}})
	return exec.Run(qc, h).OrderBy(exec.SortKey{Col: 0}, exec.SortKey{Col: 1, Desc: true})
}

// q10: returned item reporting.
func q10(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	o := exec.NewScan(cat.Table("orders"), "o_orderkey", "o_custkey", "o_orderdate")
	om := o.Meta()
	of := exec.NewFilter(o, exec.And(
		exec.Ge(col(om, "o_orderdate"), ci(Date(1993, 10, 1))),
		exec.Lt(col(om, "o_orderdate"), ci(Date(1994, 1, 1)))))
	l := exec.NewScan(cat.Table("lineitem"),
		"l_orderkey", "l_returnflag", "l_extendedprice", "l_discount")
	lm := l.Meta()
	lf := exec.NewFilter(l, exec.Eq(col(lm, "l_returnflag"), cs("R")))
	lo := exec.NewHashJoin(exec.Inner, lf, of,
		[]string{"l_orderkey"}, []string{"o_orderkey"}, []string{"o_custkey"})
	c := exec.NewScan(cat.Table("customer"),
		"c_custkey", "c_name", "c_acctbal", "c_phone", "c_nationkey", "c_address", "c_comment")
	loc := exec.NewHashJoin(exec.Inner, lo, c,
		[]string{"o_custkey"}, []string{"c_custkey"},
		[]string{"c_name", "c_acctbal", "c_phone", "c_nationkey", "c_address", "c_comment"})
	n := exec.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
	full := exec.NewHashJoin(exec.Inner, loc, n,
		[]string{"c_nationkey"}, []string{"n_nationkey"}, []string{"n_name"})
	fm := full.Meta()
	h := exec.NewHashAgg(full,
		[]string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"},
		[]*e{col(fm, "o_custkey"), col(fm, "c_name"), col(fm, "c_acctbal"), col(fm, "c_phone"),
			col(fm, "n_name"), col(fm, "c_address"), col(fm, "c_comment")},
		[]exec.AggExpr{{Func: agg.Sum, Arg: revenue(fm), Name: "revenue"}})
	return exec.Run(qc, h).OrderBy(exec.SortKey{Col: 7, Desc: true}).Limit(20)
}

// q11: important stock identification.
func q11(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	german := func() exec.Op {
		n := exec.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
		nm := n.Meta()
		nf := exec.NewFilter(n, exec.Eq(col(nm, "n_name"), cs("GERMANY")))
		s := exec.NewScan(cat.Table("supplier"), "s_suppkey", "s_nationkey")
		sg := exec.NewHashJoin(exec.Semi, s, nf, []string{"s_nationkey"}, []string{"n_nationkey"}, nil)
		ps := exec.NewScan(cat.Table("partsupp"), "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost")
		return exec.NewHashJoin(exec.Semi, ps, sg, []string{"ps_suppkey"}, []string{"s_suppkey"}, nil)
	}
	g1 := german()
	gm := g1.Meta()
	value := exec.Mul(col(gm, "ps_supplycost"), col(gm, "ps_availqty"))
	perPart := exec.NewHashAgg(g1,
		[]string{"ps_partkey"}, []*e{col(gm, "ps_partkey")},
		[]exec.AggExpr{{Func: agg.Sum, Arg: value, Name: "value"}})
	// Total over another instance of the same subplan.
	g2 := german()
	gm2 := g2.Meta()
	total := exec.NewHashAgg(g2, nil, nil,
		[]exec.AggExpr{{Func: agg.Sum,
			Arg: exec.Mul(col(gm2, "ps_supplycost"), col(gm2, "ps_availqty")), Name: "total"}})
	cross := exec.NewHashJoin(exec.Inner, perPart, total, nil, nil, []string{"total"})
	cm := cross.Meta()
	// value > total * 0.0001 (the SF-scaled fraction).
	f := exec.NewFilter(cross, exec.Gt(
		exec.ToF64(col(cm, "value")),
		exec.Mul(exec.ToF64(col(cm, "total")), exec.F64Const(0.0001))))
	out := exec.NewProject(f, []string{"ps_partkey", "value"},
		[]*e{col(cm, "ps_partkey"), col(cm, "value")})
	return exec.Run(qc, out).OrderBy(exec.SortKey{Col: 1, Desc: true})
}
