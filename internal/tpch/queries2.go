package tpch

import (
	"ocht/internal/agg"
	"ocht/internal/exec"
	"ocht/internal/storage"
)

// q12: shipping modes and order priority.
func q12(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	l := exec.NewScan(cat.Table("lineitem"),
		"l_orderkey", "l_shipmode", "l_commitdate", "l_receiptdate", "l_shipdate")
	lm := l.Meta()
	lf := exec.NewFilter(l, exec.And(exec.And(
		exec.Or(
			exec.Eq(col(lm, "l_shipmode"), cs("MAIL")),
			exec.Eq(col(lm, "l_shipmode"), cs("SHIP"))),
		exec.And(
			exec.Lt(col(lm, "l_commitdate"), col(lm, "l_receiptdate")),
			exec.Lt(col(lm, "l_shipdate"), col(lm, "l_commitdate")))),
		exec.And(
			exec.Ge(col(lm, "l_receiptdate"), ci(Date(1994, 1, 1))),
			exec.Lt(col(lm, "l_receiptdate"), ci(Date(1995, 1, 1))))))
	o := exec.NewScan(cat.Table("orders"), "o_orderkey", "o_orderpriority")
	j := exec.NewHashJoin(exec.Inner, lf, o,
		[]string{"l_orderkey"}, []string{"o_orderkey"}, []string{"o_orderpriority"})
	jm := j.Meta()
	isHigh := exec.Or(
		exec.Eq(col(jm, "o_orderpriority"), cs("1-URGENT")),
		exec.Eq(col(jm, "o_orderpriority"), cs("2-HIGH")))
	h := exec.NewHashAgg(j,
		[]string{"l_shipmode"}, []*e{col(jm, "l_shipmode")},
		[]exec.AggExpr{
			{Func: agg.Sum, Arg: exec.Case(isHigh, ci(1), ci(0)), Name: "high_line_count"},
			{Func: agg.Sum, Arg: exec.Case(isHigh, ci(0), ci(1)), Name: "low_line_count"},
		})
	return exec.Run(qc, h).OrderBy(exec.SortKey{Col: 0})
}

// q13: customer distribution.
func q13(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	c := exec.NewScan(cat.Table("customer"), "c_custkey")
	o := exec.NewScan(cat.Table("orders"), "o_orderkey", "o_custkey", "o_comment")
	om := o.Meta()
	of := exec.NewFilter(o, exec.NotLike(col(om, "o_comment"), "%special%requests%"))
	lj := exec.NewHashJoin(exec.LeftOuter, c, of,
		[]string{"c_custkey"}, []string{"o_custkey"}, []string{"o_orderkey"})
	ljm := lj.Meta()
	perCust := exec.NewHashAgg(lj,
		[]string{"c_custkey"}, []*e{col(ljm, "c_custkey")},
		[]exec.AggExpr{{Func: agg.Count, Arg: col(ljm, "o_orderkey"), Name: "c_count"}})
	pm := perCust.Meta()
	dist := exec.NewHashAgg(perCust,
		[]string{"c_count"}, []*e{col(pm, "c_count")},
		[]exec.AggExpr{{Func: agg.CountStar, Name: "custdist"}})
	return exec.Run(qc, dist).OrderBy(exec.SortKey{Col: 1, Desc: true}, exec.SortKey{Col: 0, Desc: true})
}

// q14: promotion effect.
func q14(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	l := exec.NewScan(cat.Table("lineitem"), "l_partkey", "l_extendedprice", "l_discount", "l_shipdate")
	lm := l.Meta()
	lf := exec.NewFilter(l, exec.And(
		exec.Ge(col(lm, "l_shipdate"), ci(Date(1995, 9, 1))),
		exec.Lt(col(lm, "l_shipdate"), ci(Date(1995, 10, 1)))))
	p := exec.NewScan(cat.Table("part"), "p_partkey", "p_type")
	j := exec.NewHashJoin(exec.Inner, lf, p,
		[]string{"l_partkey"}, []string{"p_partkey"}, []string{"p_type"})
	jm := j.Meta()
	rev := revenue(jm)
	promo := exec.Case(exec.Like(col(jm, "p_type"), "PROMO%"), rev, ci(0))
	h := exec.NewHashAgg(j, nil, nil, []exec.AggExpr{
		{Func: agg.Sum, Arg: promo, Name: "promo"},
		{Func: agg.Sum, Arg: rev, Name: "total"},
	})
	hm := h.Meta()
	out := exec.NewProject(h, []string{"promo_revenue"},
		[]*e{exec.Div(
			exec.Mul(exec.F64Const(100), exec.ToF64(col(hm, "promo"))),
			exec.ToF64(col(hm, "total")))})
	return exec.Run(qc, out)
}

// revenuePerSupplier is Q15's revenue view.
func revenuePerSupplier(cat *storage.Catalog) exec.Op {
	l := exec.NewScan(cat.Table("lineitem"), "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate")
	lm := l.Meta()
	lf := exec.NewFilter(l, exec.And(
		exec.Ge(col(lm, "l_shipdate"), ci(Date(1996, 1, 1))),
		exec.Lt(col(lm, "l_shipdate"), ci(Date(1996, 4, 1)))))
	return exec.NewHashAgg(lf,
		[]string{"supplier_no"}, []*e{col(lm, "l_suppkey")},
		[]exec.AggExpr{{Func: agg.Sum, Arg: revenue(lm), Name: "total_revenue"}})
}

// q15: top supplier.
func q15(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	rev := revenuePerSupplier(cat)
	rm := rev.Meta()
	maxRev := exec.NewHashAgg(revenuePerSupplier(cat), nil, nil,
		[]exec.AggExpr{{Func: agg.Max, Arg: exec.ColIdx(rm, 1), Name: "max_revenue"}})
	cross := exec.NewHashJoin(exec.Inner, rev, maxRev, nil, nil, []string{"max_revenue"})
	cm := cross.Meta()
	top := exec.NewFilter(cross, exec.Eq(col(cm, "total_revenue"), col(cm, "max_revenue")))
	s := exec.NewScan(cat.Table("supplier"), "s_suppkey", "s_name", "s_address", "s_phone")
	j := exec.NewHashJoin(exec.Inner, top, s,
		[]string{"supplier_no"}, []string{"s_suppkey"},
		[]string{"s_name", "s_address", "s_phone"})
	jm := j.Meta()
	out := exec.NewProject(j,
		[]string{"s_suppkey", "s_name", "s_address", "s_phone", "total_revenue"},
		[]*e{col(jm, "supplier_no"), col(jm, "s_name"), col(jm, "s_address"),
			col(jm, "s_phone"), col(jm, "total_revenue")})
	return exec.Run(qc, out).OrderBy(exec.SortKey{Col: 0})
}

// q16: parts/supplier relationship.
func q16(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	p := exec.NewScan(cat.Table("part"), "p_partkey", "p_brand", "p_type", "p_size")
	pm := p.Meta()
	pf := exec.NewFilter(p, exec.And(exec.And(
		exec.Ne(col(pm, "p_brand"), cs("Brand#45")),
		exec.NotLike(col(pm, "p_type"), "MEDIUM POLISHED%")),
		exec.In(col(pm, "p_size"), ci(49), ci(14), ci(23), ci(45), ci(19), ci(3), ci(36), ci(9))))
	ps := exec.NewScan(cat.Table("partsupp"), "ps_partkey", "ps_suppkey")
	j := exec.NewHashJoin(exec.Inner, ps, pf,
		[]string{"ps_partkey"}, []string{"p_partkey"}, []string{"p_brand", "p_type", "p_size"})
	s := exec.NewScan(cat.Table("supplier"), "s_suppkey", "s_comment")
	sm := s.Meta()
	sf := exec.NewFilter(s, exec.Like(col(sm, "s_comment"), "%Customer%Complaints%"))
	anti := exec.NewHashJoin(exec.Anti, j, sf, []string{"ps_suppkey"}, []string{"s_suppkey"}, nil)
	am := anti.Meta()
	// COUNT(DISTINCT ps_suppkey): distinct stage, then count.
	distinct := exec.NewHashAgg(anti,
		[]string{"p_brand", "p_type", "p_size", "ps_suppkey"},
		[]*e{col(am, "p_brand"), col(am, "p_type"), col(am, "p_size"), col(am, "ps_suppkey")},
		nil)
	dm := distinct.Meta()
	h := exec.NewHashAgg(distinct,
		[]string{"p_brand", "p_type", "p_size"},
		[]*e{col(dm, "p_brand"), col(dm, "p_type"), col(dm, "p_size")},
		[]exec.AggExpr{{Func: agg.CountStar, Name: "supplier_cnt"}})
	return exec.Run(qc, h).OrderBy(
		exec.SortKey{Col: 3, Desc: true}, exec.SortKey{Col: 0},
		exec.SortKey{Col: 1}, exec.SortKey{Col: 2})
}

// q17: small-quantity-order revenue.
func q17(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	p := exec.NewScan(cat.Table("part"), "p_partkey", "p_brand", "p_container")
	pm := p.Meta()
	pf := exec.NewFilter(p, exec.And(
		exec.Eq(col(pm, "p_brand"), cs("Brand#23")),
		exec.Eq(col(pm, "p_container"), cs("MED BOX"))))
	l1 := exec.NewScan(cat.Table("lineitem"), "l_partkey", "l_quantity", "l_extendedprice")
	j := exec.NewHashJoin(exec.Inner, l1, pf, []string{"l_partkey"}, []string{"p_partkey"}, nil)
	// Per-part average quantity over all lineitems of those parts.
	l2 := exec.NewScan(cat.Table("lineitem"), "l_partkey", "l_quantity")
	l2m := l2.Meta()
	j2 := exec.NewHashJoin(exec.Semi, l2, pf, []string{"l_partkey"}, []string{"p_partkey"}, nil)
	avgQty := exec.NewHashAgg(j2,
		[]string{"a_partkey"}, []*e{col(l2m, "l_partkey")},
		[]exec.AggExpr{{Func: exec.Avg, Arg: col(l2m, "l_quantity"), Name: "avg_qty"}})
	withAvg := exec.NewHashJoin(exec.Inner, j, avgQty,
		[]string{"l_partkey"}, []string{"a_partkey"}, []string{"avg_qty"})
	wm := withAvg.Meta()
	small := exec.NewFilter(withAvg, exec.Lt(
		exec.ToF64(col(wm, "l_quantity")),
		exec.Mul(exec.F64Const(0.2), col(wm, "avg_qty"))))
	h := exec.NewHashAgg(small, nil, nil,
		[]exec.AggExpr{{Func: agg.Sum, Arg: col(wm, "l_extendedprice"), Name: "sum_price"}})
	hm := h.Meta()
	out := exec.NewProject(h, []string{"avg_yearly"},
		[]*e{exec.Div(exec.ToF64(col(hm, "sum_price")), exec.F64Const(7))})
	return exec.Run(qc, out)
}

// q18: large volume customer.
func q18(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	l := exec.NewScan(cat.Table("lineitem"), "l_orderkey", "l_quantity")
	lm := l.Meta()
	perOrder := exec.NewHashAgg(l,
		[]string{"g_orderkey"}, []*e{col(lm, "l_orderkey")},
		[]exec.AggExpr{{Func: agg.Sum, Arg: col(lm, "l_quantity"), Name: "sum_qty"}})
	pom := perOrder.Meta()
	big := exec.NewFilter(perOrder, exec.Gt(col(pom, "sum_qty"), ci(300)))
	o := exec.NewScan(cat.Table("orders"), "o_orderkey", "o_custkey", "o_orderdate", "o_totalprice")
	oBig := exec.NewHashJoin(exec.Inner, o, big,
		[]string{"o_orderkey"}, []string{"g_orderkey"}, []string{"sum_qty"})
	c := exec.NewScan(cat.Table("customer"), "c_custkey", "c_name")
	full := exec.NewHashJoin(exec.Inner, oBig, c,
		[]string{"o_custkey"}, []string{"c_custkey"}, []string{"c_name"})
	fm := full.Meta()
	h := exec.NewHashAgg(full,
		[]string{"c_name", "o_custkey", "o_orderkey", "o_orderdate", "o_totalprice"},
		[]*e{col(fm, "c_name"), col(fm, "o_custkey"), col(fm, "o_orderkey"),
			col(fm, "o_orderdate"), col(fm, "o_totalprice")},
		[]exec.AggExpr{{Func: agg.Sum, Arg: col(fm, "sum_qty"), Name: "sum_qty_out"}})
	return exec.Run(qc, h).OrderBy(exec.SortKey{Col: 4, Desc: true}, exec.SortKey{Col: 3}).Limit(100)
}

// q19: discounted revenue (the three-way OR of brand/container/quantity).
func q19(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	l := exec.NewScan(cat.Table("lineitem"),
		"l_partkey", "l_quantity", "l_extendedprice", "l_discount", "l_shipmode", "l_shipinstruct")
	lm := l.Meta()
	lf := exec.NewFilter(l, exec.And(
		exec.Or(exec.Eq(col(lm, "l_shipmode"), cs("AIR")), exec.Eq(col(lm, "l_shipmode"), cs("AIR REG"))),
		exec.Eq(col(lm, "l_shipinstruct"), cs("DELIVER IN PERSON"))))
	p := exec.NewScan(cat.Table("part"), "p_partkey", "p_brand", "p_container", "p_size")
	j := exec.NewHashJoin(exec.Inner, lf, p,
		[]string{"l_partkey"}, []string{"p_partkey"},
		[]string{"p_brand", "p_container", "p_size"})
	jm := j.Meta()
	contIn := func(vals ...string) *e {
		out := exec.Eq(col(jm, "p_container"), cs(vals[0]))
		for _, v := range vals[1:] {
			out = exec.Or(out, exec.Eq(col(jm, "p_container"), cs(v)))
		}
		return out
	}
	qty := col(jm, "l_quantity")
	size := col(jm, "p_size")
	branch := func(brand string, conts []string, qlo, qhi, smax int64) *e {
		return exec.And(exec.And(
			exec.Eq(col(jm, "p_brand"), cs(brand)),
			contIn(conts...)),
			exec.And(exec.And(
				exec.Ge(qty, ci(qlo)), exec.Le(qty, ci(qhi))),
				exec.And(exec.Ge(size, ci(1)), exec.Le(size, ci(smax)))))
	}
	pred := exec.Or(exec.Or(
		branch("Brand#12", []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5),
		branch("Brand#23", []string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10)),
		branch("Brand#34", []string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15))
	f := exec.NewFilter(j, pred)
	fm := f.Meta()
	h := exec.NewHashAgg(f, nil, nil,
		[]exec.AggExpr{{Func: agg.Sum, Arg: revenue(fm), Name: "revenue"}})
	return exec.Run(qc, h)
}

// q20: potential part promotion.
func q20(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	p := exec.NewScan(cat.Table("part"), "p_partkey", "p_name")
	pm := p.Meta()
	forest := exec.NewFilter(p, exec.Like(col(pm, "p_name"), "forest%"))
	l := exec.NewScan(cat.Table("lineitem"), "l_partkey", "l_suppkey", "l_quantity", "l_shipdate")
	lm := l.Meta()
	lf := exec.NewFilter(l, exec.And(
		exec.Ge(col(lm, "l_shipdate"), ci(Date(1994, 1, 1))),
		exec.Lt(col(lm, "l_shipdate"), ci(Date(1995, 1, 1)))))
	lForest := exec.NewHashJoin(exec.Semi, lf, forest, []string{"l_partkey"}, []string{"p_partkey"}, nil)
	halfQty := exec.NewHashAgg(lForest,
		[]string{"q_partkey", "q_suppkey"},
		[]*e{col(lm, "l_partkey"), col(lm, "l_suppkey")},
		[]exec.AggExpr{{Func: agg.Sum, Arg: col(lm, "l_quantity"), Name: "sum_qty"}})
	ps := exec.NewScan(cat.Table("partsupp"), "ps_partkey", "ps_suppkey", "ps_availqty")
	j := exec.NewHashJoin(exec.Inner, ps, halfQty,
		[]string{"ps_partkey", "ps_suppkey"}, []string{"q_partkey", "q_suppkey"},
		[]string{"sum_qty"})
	jmm := j.Meta()
	enough := exec.NewFilter(j, exec.Gt(
		exec.Mul(col(jmm, "ps_availqty"), ci(2)), col(jmm, "sum_qty")))
	s := exec.NewScan(cat.Table("supplier"), "s_suppkey", "s_name", "s_address", "s_nationkey")
	sSemi := exec.NewHashJoin(exec.Semi, s, enough, []string{"s_suppkey"}, []string{"ps_suppkey"}, nil)
	n := exec.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
	nm := n.Meta()
	nf := exec.NewFilter(n, exec.Eq(col(nm, "n_name"), cs("CANADA")))
	full := exec.NewHashJoin(exec.Semi, sSemi, nf, []string{"s_nationkey"}, []string{"n_nationkey"}, nil)
	fm2 := full.Meta()
	out := exec.NewProject(full, []string{"s_name", "s_address"},
		[]*e{col(fm2, "s_name"), col(fm2, "s_address")})
	return exec.Run(qc, out).OrderBy(exec.SortKey{Col: 0})
}

// q21: suppliers who kept orders waiting.
func q21(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	late := func() exec.Op {
		l := exec.NewScan(cat.Table("lineitem"), "l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate")
		lm := l.Meta()
		return exec.NewFilter(l, exec.Gt(col(lm, "l_receiptdate"), col(lm, "l_commitdate")))
	}
	// Distinct supplier counts per order: all suppliers and late ones.
	distinctCount := func(src exec.Op, keyName, cntName string) exec.Op {
		sm := src.Meta()
		d := exec.NewHashAgg(src,
			[]string{"d_orderkey", "d_suppkey"},
			[]*e{col(sm, "l_orderkey"), col(sm, "l_suppkey")}, nil)
		dm := d.Meta()
		return exec.NewHashAgg(d,
			[]string{keyName}, []*e{col(dm, "d_orderkey")},
			[]exec.AggExpr{{Func: agg.CountStar, Name: cntName}})
	}
	allSupp := distinctCount(exec.NewScan(cat.Table("lineitem"), "l_orderkey", "l_suppkey"), "ns_orderkey", "nsupp")
	lateSupp := distinctCount(late(), "nl_orderkey", "nlate")

	l1 := late()
	s := exec.NewScan(cat.Table("supplier"), "s_suppkey", "s_name", "s_nationkey")
	l1s := exec.NewHashJoin(exec.Inner, l1, s,
		[]string{"l_suppkey"}, []string{"s_suppkey"}, []string{"s_name", "s_nationkey"})
	n := exec.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
	nm := n.Meta()
	nf := exec.NewFilter(n, exec.Eq(col(nm, "n_name"), cs("SAUDI ARABIA")))
	l1sn := exec.NewHashJoin(exec.Semi, l1s, nf, []string{"s_nationkey"}, []string{"n_nationkey"}, nil)
	o := exec.NewScan(cat.Table("orders"), "o_orderkey", "o_orderstatus")
	om := o.Meta()
	of := exec.NewFilter(o, exec.Eq(col(om, "o_orderstatus"), cs("F")))
	withO := exec.NewHashJoin(exec.Semi, l1sn, of, []string{"l_orderkey"}, []string{"o_orderkey"}, nil)
	withAll := exec.NewHashJoin(exec.Inner, withO, allSupp,
		[]string{"l_orderkey"}, []string{"ns_orderkey"}, []string{"nsupp"})
	withLate := exec.NewHashJoin(exec.Inner, withAll, lateSupp,
		[]string{"l_orderkey"}, []string{"nl_orderkey"}, []string{"nlate"})
	wm := withLate.Meta()
	// EXISTS other supplier <=> nsupp >= 2; NOT EXISTS other late
	// supplier <=> nlate == 1 (l1's own supplier is late by definition).
	f := exec.NewFilter(withLate, exec.And(
		exec.Ge(col(wm, "nsupp"), ci(2)),
		exec.Eq(col(wm, "nlate"), ci(1))))
	h := exec.NewHashAgg(f,
		[]string{"s_name"}, []*e{col(wm, "s_name")},
		[]exec.AggExpr{{Func: agg.CountStar, Name: "numwait"}})
	return exec.Run(qc, h).OrderBy(exec.SortKey{Col: 1, Desc: true}, exec.SortKey{Col: 0}).Limit(100)
}

// q22: global sales opportunity.
func q22(cat *storage.Catalog, qc *exec.QCtx) *exec.Result {
	codes := []*e{cs("13"), cs("31"), cs("23"), cs("29"), cs("30"), cs("18"), cs("17")}
	custWithCode := func() (exec.Op, []exec.Meta) {
		c := exec.NewScan(cat.Table("customer"), "c_custkey", "c_phone", "c_acctbal")
		cm := c.Meta()
		proj := exec.NewProject(c,
			[]string{"c_custkey", "c_acctbal", "cntrycode"},
			[]*e{col(cm, "c_custkey"), col(cm, "c_acctbal"),
				exec.Substr(col(cm, "c_phone"), 2)})
		pm := proj.Meta()
		f := exec.NewFilter(proj, exec.In(col(pm, "cntrycode"), codes...))
		return f, pm
	}
	// Average positive balance among those customers.
	sub, sm := custWithCode()
	pos := exec.NewFilter(sub, exec.Gt(col(sm, "c_acctbal"), ci(0)))
	avgBal := exec.NewHashAgg(pos, nil, nil,
		[]exec.AggExpr{{Func: exec.Avg, Arg: col(sm, "c_acctbal"), Name: "avg_bal"}})

	main, mm := custWithCode()
	withAvg := exec.NewHashJoin(exec.Inner, main, avgBal, nil, nil, []string{"avg_bal"})
	wm := withAvg.Meta()
	rich := exec.NewFilter(withAvg, exec.Gt(
		exec.ToF64(col(wm, "c_acctbal")), col(wm, "avg_bal")))
	o := exec.NewScan(cat.Table("orders"), "o_custkey")
	noOrders := exec.NewHashJoin(exec.Anti, rich, o, []string{"c_custkey"}, []string{"o_custkey"}, nil)
	nm := noOrders.Meta()
	h := exec.NewHashAgg(noOrders,
		[]string{"cntrycode"}, []*e{col(nm, "cntrycode")},
		[]exec.AggExpr{
			{Func: agg.CountStar, Name: "numcust"},
			{Func: agg.Sum, Arg: col(nm, "c_acctbal"), Name: "totacctbal"},
		})
	_ = mm
	return exec.Run(qc, h).OrderBy(exec.SortKey{Col: 0})
}
