package tpch

import (
	"fmt"
	"testing"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// genSealed generates the benchmark catalog under the given seal-compression
// policy and restores the process defaults afterwards.
func genSealed(mode storage.CompressMode, minRows int) *storage.Catalog {
	storage.SetSealCompression(mode)
	storage.SetCompressMinRows(minRows)
	defer func() {
		storage.SetSealCompression(storage.CompressAuto)
		storage.SetCompressMinRows(4096)
	}()
	return Gen(0.005, 42)
}

// compressedBlocks counts string blocks held in the compressed sealed form.
func compressedBlocks(cat *storage.Catalog) int {
	n := 0
	for _, name := range cat.Names() {
		for _, c := range cat.Table(name).Cols {
			if c.Type != vec.Str {
				continue
			}
			for bi := 0; bi < c.Blocks(); bi++ {
				if c.Block(bi).DictCompressed() {
					n++
				}
			}
		}
	}
	return n
}

// TestAllQueriesSealCompressedMatchPlain is the storage-layer acceptance
// check of optimistic seal compression: every TPC-H query, at every worker
// count, must return byte-identical results whether the catalog's string
// blocks were sealed compressed (pair-table dictionaries + bit-packed
// codes) or plain.
func TestAllQueriesSealCompressedMatchPlain(t *testing.T) {
	plainCat := genSealed(storage.CompressOff, 1)
	compCat := genSealed(storage.CompressOn, 1)
	if n := compressedBlocks(compCat); n == 0 {
		t.Fatal("forced compression sealed no compressed string blocks")
	}
	if n := compressedBlocks(plainCat); n != 0 {
		t.Fatalf("CompressOff sealed %d compressed blocks", n)
	}
	for q := 1; q <= 22; q++ {
		ref := exec.NewQCtx(core.All())
		want := resKey(Q(q, plainCat, ref))
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("q%d/w%d", q, workers), func(t *testing.T) {
				qc := exec.NewQCtx(core.All())
				qc.Workers = workers
				got := resKey(Q(q, compCat, qc))
				if len(got) != len(want) {
					t.Fatalf("compressed %d rows, plain %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("row %d:\n  compressed %s\n  plain      %s", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestSealCompressedFootprint is the footprint smoke gate (run by CI): on
// the string-heavy TPC-H tables, sealing compressed must cut the resident
// string footprint to at most 60% of plain while the whole-table scans
// above stay byte-identical.
func TestSealCompressedFootprint(t *testing.T) {
	compCat := genSealed(storage.CompressOn, 1)
	for _, name := range []string{"orders", "customer", "part"} {
		comp, plain := compCat.Table(name).Footprint()
		if comp >= plain*60/100 {
			t.Errorf("%s: compressed footprint %d bytes > 60%% of plain %d", name, comp, plain)
		} else {
			t.Logf("%s: %d -> %d resident bytes (%.1f%%)",
				name, plain, comp, 100*float64(comp)/float64(plain))
		}
	}
}
