package tpch

import (
	"sort"
	"strings"
	"testing"

	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/storage"
)

var testCat *storage.Catalog

func catFor(t testing.TB) *storage.Catalog {
	if testCat == nil {
		testCat = Gen(0.005, 42)
	}
	return testCat
}

func TestGenSizes(t *testing.T) {
	cat := catFor(t)
	if cat.Table("region").Rows() != 5 || cat.Table("nation").Rows() != 25 {
		t.Error("region/nation sizes")
	}
	if cat.Table("supplier").Rows() != 50 {
		t.Errorf("supplier rows %d", cat.Table("supplier").Rows())
	}
	if cat.Table("customer").Rows() != 750 {
		t.Errorf("customer rows %d", cat.Table("customer").Rows())
	}
	if cat.Table("orders").Rows() != 7500 {
		t.Errorf("orders rows %d", cat.Table("orders").Rows())
	}
	li := cat.Table("lineitem").Rows()
	if li < 7500 || li > 7500*7 {
		t.Errorf("lineitem rows %d", li)
	}
	ps := cat.Table("partsupp")
	if ps.Rows() != cat.Table("part").Rows()*4 {
		t.Error("partsupp must have 4 rows per part")
	}
}

func TestGenDeterministic(t *testing.T) {
	a := Gen(0.002, 7)
	b := Gen(0.002, 7)
	qa := exec.Run(exec.NewQCtx(core.Vanilla()), exec.NewScan(a.Table("orders"), "o_totalprice"))
	qb := exec.Run(exec.NewQCtx(core.Vanilla()), exec.NewScan(b.Table("orders"), "o_totalprice"))
	if len(qa.Rows) != len(qb.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range qa.Rows {
		if qa.Rows[i][0].I != qb.Rows[i][0].I {
			t.Fatal("generation must be deterministic")
		}
	}
}

func TestDateHelpers(t *testing.T) {
	if Date(1995, 3, 15) != 19950315 {
		t.Error("Date")
	}
	if DateAdd(19981201, -90) != 19980902 {
		t.Errorf("DateAdd: %d", DateAdd(19981201, -90))
	}
	if DateAdd(19951231, 1) != 19960101 {
		t.Error("DateAdd year wrap")
	}
}

func TestZoneMapsPresent(t *testing.T) {
	cat := catFor(t)
	d := cat.Table("lineitem").Col("l_quantity").TotalDomain()
	if !d.Valid || d.Min < 1 || d.Max > 50 {
		t.Errorf("l_quantity domain %v", d)
	}
	if !cat.Table("orders").Col("o_orderdate").TotalDomain().Valid {
		t.Error("orderdate domain must be known")
	}
}

func resKey(r *exec.Result) []string {
	rows := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return rows
}

// TestAllQueriesAgreeAcrossFlags is the central correctness check of the
// reproduction: every TPC-H query must return identical results with and
// without the paper's techniques.
func TestAllQueriesAgreeAcrossFlags(t *testing.T) {
	cat := catFor(t)
	combos := []core.Flags{
		core.Vanilla(),
		{UseUSSR: true},
		{Compress: true},
		{Compress: true, Split: true},
		core.All(),
	}
	for q := 1; q <= 22; q++ {
		var ref []string
		for _, flags := range combos {
			qc := exec.NewQCtx(flags)
			res := Q(q, cat, qc)
			got := resKey(res)
			if ref == nil {
				ref = got
				continue
			}
			if len(ref) != len(got) {
				t.Errorf("Q%d: %d rows vanilla vs %d rows %+v", q, len(ref), len(got), flags)
				continue
			}
			for i := range ref {
				if ref[i] != got[i] {
					t.Errorf("Q%d row %d differs under %+v:\n  vanilla: %s\n  flags:   %s",
						q, i, flags, ref[i], got[i])
					break
				}
			}
		}
	}
}

func TestQ1Shape(t *testing.T) {
	cat := catFor(t)
	r := Q(1, cat, exec.NewQCtx(core.All()))
	if len(r.Rows) == 0 || len(r.Rows) > 6 {
		t.Fatalf("Q1 groups: %d", len(r.Rows))
	}
	// count_order must be positive and avg_qty within the quantity domain.
	for _, row := range r.Rows {
		if row[9].I <= 0 {
			t.Error("count_order <= 0")
		}
		if row[6].F < 1 || row[6].F > 50 {
			t.Errorf("avg_qty %f out of range", row[6].F)
		}
	}
}

func TestQ6NonEmpty(t *testing.T) {
	cat := catFor(t)
	r := Q(6, cat, exec.NewQCtx(core.Vanilla()))
	if len(r.Rows) != 1 {
		t.Fatalf("Q6 must return one row")
	}
	if r.Rows[0][0].Null {
		t.Error("Q6 revenue is NULL")
	}
}

func TestQ13Distribution(t *testing.T) {
	cat := catFor(t)
	r := Q(13, cat, exec.NewQCtx(core.All()))
	total := int64(0)
	for _, row := range r.Rows {
		total += row[1].I
	}
	if total != int64(cat.Table("customer").Rows()) {
		t.Errorf("Q13 distribution sums to %d customers, want %d",
			total, cat.Table("customer").Rows())
	}
}

func TestQ4PrioritiesBounded(t *testing.T) {
	cat := catFor(t)
	r := Q(4, cat, exec.NewQCtx(core.All()))
	if len(r.Rows) > 5 {
		t.Errorf("Q4 has %d priorities", len(r.Rows))
	}
}

func TestHashTableFootprintShrinks(t *testing.T) {
	cat := catFor(t)
	// Join/agg heavy queries must show smaller hash tables when
	// compressed.
	for _, q := range []int{3, 5, 9, 18} {
		van := exec.NewQCtx(core.Vanilla())
		Q(q, cat, van)
		opt := exec.NewQCtx(core.Flags{Compress: true, Split: true})
		Q(q, cat, opt)
		if opt.HashTableBytes() >= van.HashTableBytes() {
			t.Errorf("Q%d: optimized %dB >= vanilla %dB",
				q, opt.HashTableBytes(), van.HashTableBytes())
		}
	}
}
