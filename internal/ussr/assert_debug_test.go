//go:build ocht_debug

package ussr

import (
	"testing"

	"ocht/internal/vec"
)

// TestAssertResident checks the residency assertion on real, forged and
// stale references, including through the wired Hash path.
func TestAssertResident(t *testing.T) {
	u := New()
	r, ok := u.Insert("hello")
	if !ok {
		t.Fatal("insert of a short string should succeed")
	}
	u.AssertResident(r) // real reference: no panic
	if got := u.Get(r); got != "hello" {
		t.Fatalf("Get = %q, want %q", got, "hello")
	}

	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected assertion panic, got none", name)
			}
		}()
		f()
	}
	expectPanic("untagged reference", func() {
		u.AssertResident(vec.StrRef(3))
	})
	expectPanic("slot past allocation", func() {
		u.AssertResident(vec.USSRTag | vec.StrRef(u.next+1))
	})
	expectPanic("slot zero", func() {
		u.AssertResident(vec.USSRTag)
	})
	expectPanic("Hash on forged reference", func() {
		u.Hash(vec.USSRTag | vec.StrRef(DataSlots-1))
	})
}
