//go:build !ocht_debug

package ussr

import "ocht/internal/vec"

// DebugAsserts reports whether the ocht_debug assertion layer is compiled
// in.
const DebugAsserts = false

// AssertResident is a no-op in release builds; see assert_on.go.
func (u *USSR) AssertResident(r vec.StrRef) {}
