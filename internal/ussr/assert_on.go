//go:build ocht_debug

package ussr

import (
	"fmt"

	"ocht/internal/vec"
)

// DebugAsserts reports whether the ocht_debug assertion layer is compiled
// in.
const DebugAsserts = true

// AssertResident panics if r is not a reference to an allocated USSR
// slot: the tag bit must be set and the slot must lie inside the
// allocated prefix of the data region (hash word at slot-1, string bytes
// from slot). Hash and Get trust the reference completely — a forged or
// stale reference reads another string's bytes, silently.
func (u *USSR) AssertResident(r vec.StrRef) {
	if !r.InUSSR() {
		panic(fmt.Sprintf("ussr: reference %#x has no USSR tag", uint64(r)))
	}
	slot := int(r.USSRSlot())
	if slot < firstSlot || slot >= u.next {
		panic(fmt.Sprintf("ussr: slot %d outside allocated region [%d, %d)", slot, firstSlot, u.next))
	}
}
