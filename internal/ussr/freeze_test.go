package ussr

import "testing"

func TestFreezeMakesInsertPanic(t *testing.T) {
	u := New()
	if u.Frozen() {
		t.Fatal("new region must not be frozen")
	}
	ra, ok := u.Insert("alpha")
	if !ok {
		t.Fatal("insert before freeze must succeed")
	}
	u.Freeze()
	if !u.Frozen() {
		t.Fatal("Frozen after Freeze")
	}

	// Lookup stays available read-only.
	if r, ok := u.Lookup("alpha"); !ok || r != ra {
		t.Fatalf("lookup after freeze: %v %v", r, ok)
	}
	if _, ok := u.Lookup("beta"); ok {
		t.Fatal("lookup of absent string must miss")
	}
	if u.Get(ra) != "alpha" {
		t.Fatal("Get after freeze")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Insert after Freeze must panic")
		}
	}()
	u.Insert("beta")
}

func TestResetClearsFreeze(t *testing.T) {
	u := New()
	u.Freeze()
	u.Reset()
	if u.Frozen() {
		t.Fatal("Reset must unfreeze")
	}
	if _, ok := u.Insert("gamma"); !ok {
		t.Fatal("insert after reset")
	}
}
