// Package ussr implements the Unique Strings Self-aligned Region
// (Section IV of the paper): a query-lifetime dictionary of frequent
// strings with a fixed 768 kB budget — a 512 kB data region of 64 k
// 8-byte slots plus a 256 kB linear hash table of 64 k 4-byte buckets.
//
// All strings inside the USSR are unique, so equality of resident strings
// is reference equality, and every resident string's hash is materialized
// in the slot immediately before its bytes, so hashing is a single load.
//
// Substitution note: the paper aligns the data region to a self-aligned
// address so that USSR residency is a pointer-mask test and the
// pre-computed hash is reachable as ((uint64*)s)[-1]. Go forbids raw
// pointer arithmetic, so references are tagged 64-bit handles
// (vec.StrRef): the residency test is the same single mask-and-compare,
// and the hash load is Data[slot-1]. A side array of 16-bit lengths
// stands in for C's NUL terminators, because Go strings carry explicit
// lengths.
package ussr

import (
	"encoding/binary"

	"ocht/internal/strhash"
	"ocht/internal/vec"
)

const (
	// DataSlots is the number of 8-byte slots in the data region (512 kB).
	DataSlots = 1 << 16
	// Buckets is the number of 4-byte buckets in the linear hash table
	// (256 kB). With at most 32 k strings the load factor stays below 50%.
	Buckets = 1 << 16
	// MaxProbe is the probe-sequence cap: inserts encountering a longer
	// sequence fail, keeping negative lookups fast (Section IV-D).
	MaxProbe = 3
	// firstSlot is the first allocatable slot. Slot 0 stays free so the
	// slot number 0 can mark exceptions in Optimistic Splitting
	// (Section IV-F), and the first string's hash lives at slot 1.
	firstSlot = 1
)

// Stats records the insertion statistics reported in Table III.
type Stats struct {
	Candidates int // insert attempts
	Rejected   int // failed inserts (sampling policy, region full, probe cap)
	Count      int // strings resident
	SizeBytes  int // data-region bytes in use
	StrBytes   int // raw bytes of resident strings (excludes hashes/padding)
}

// AvgLen returns the average resident string length in bytes.
func (s Stats) AvgLen() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.StrBytes) / float64(s.Count)
}

// RejectionRatio returns Rejected/Candidates as a percentage.
func (s Stats) RejectionRatio() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return 100 * float64(s.Rejected) / float64(s.Candidates)
}

// USSR is a single query's Unique Strings Self-aligned Region.
// It is not safe for concurrent use; each query pipeline owns one.
type USSR struct {
	// AcceptLong disables the long-string sampling policy of
	// Section IV-D (ablation only): any string fitting the free space is
	// accepted, letting few large strings crowd out many small ones.
	AcceptLong bool

	data    []uint64 // DataSlots slots: hash word, then string bytes
	lens    []uint16 // string length per starting slot
	buckets []uint32 // hi 16 bits: hash extract; lo 16 bits: slot; 0=empty
	next    int      // next free slot
	frozen  bool     // read-only: inserts panic (parallel sharing contract)
	stats   Stats
}

// New allocates an empty USSR.
func New() *USSR {
	return &USSR{
		data:    make([]uint64, DataSlots),
		lens:    make([]uint16, DataSlots),
		buckets: make([]uint32, Buckets),
		next:    firstSlot,
	}
}

// Reset clears the region for reuse by the next query.
func (u *USSR) Reset() {
	for i := range u.buckets {
		u.buckets[i] = 0
	}
	u.next = firstSlot
	u.frozen = false
	u.stats = Stats{}
}

// Freeze marks the region read-only. After Freeze, Insert panics; lookups,
// hashes and reads remain valid and — because nothing mutates — are safe to
// share across goroutines. The parallel executor freezes the USSR after its
// single-threaded warmup pass and before spawning workers.
func (u *USSR) Freeze() { u.frozen = true }

// Frozen reports whether the region has been frozen.
func (u *USSR) Frozen() bool { return u.frozen }

// Stats returns a snapshot of the insertion statistics.
func (u *USSR) Stats() Stats {
	s := u.stats
	s.SizeBytes = (u.next - firstSlot) * 8
	return s
}

// Insert finds or inserts s and returns its reference. ok is false when s
// is not resident and could not be inserted (sampling rejection, region
// full, or probe-sequence cap); the caller then falls back to the heap.
func (u *USSR) Insert(s string) (vec.StrRef, bool) {
	return u.InsertHashed(s, strhash.HashString(s))
}

// InsertHashed is Insert for callers that already computed the hash.
func (u *USSR) InsertHashed(s string, h uint64) (vec.StrRef, bool) {
	if u.frozen {
		panic("ussr: Insert after Freeze (region is shared read-only)")
	}
	u.stats.Candidates++
	idx := uint32(h) & (Buckets - 1)
	extract := uint16(h >> 16)
	freeAt := -1
	for i := 0; i < MaxProbe; i++ {
		b := u.buckets[(idx+uint32(i))&(Buckets-1)]
		if b == 0 {
			freeAt = int((idx + uint32(i)) & (Buckets - 1))
			break
		}
		if uint16(b>>16) == extract {
			slot := uint16(b)
			if u.data[slot-1] == h && u.equalAt(slot, s) {
				return vec.USSRTag | vec.StrRef(slot), true
			}
		}
	}
	if freeAt < 0 {
		// Probe sequence longer than MaxProbe: highly infrequent at <50%
		// load, but gives up rather than degrade negative lookups.
		u.stats.Rejected++
		return 0, false
	}

	// Sampling policy (Section IV-D): a string occupying more than
	// min(F, max(2, floor(F/64))) slots is rejected, preferring many small
	// strings over few large ones as space fills up.
	strSlots := (len(s) + 7) / 8
	if strSlots == 0 {
		strSlots = 1 // the empty string still takes a slot
	}
	need := 1 + strSlots // hash slot + string slots
	free := DataSlots - u.next
	limit := free / 64
	if limit < 2 {
		limit = 2
	}
	if limit > free {
		limit = free
	}
	if u.AcceptLong {
		limit = free
	}
	if need > limit {
		u.stats.Rejected++
		return 0, false
	}

	// Materialize: hash word, then the zero-padded string bytes.
	u.data[u.next] = h
	slot := u.next + 1
	copyIntoSlots(u.data[slot:slot+strSlots], s)
	u.lens[slot] = uint16(len(s))
	u.next = slot + strSlots
	u.buckets[freeAt] = uint32(extract)<<16 | uint32(uint16(slot))
	u.stats.Count++
	u.stats.StrBytes += len(s)
	return vec.USSRTag | vec.StrRef(uint16(slot)), true
}

// Lookup finds s without inserting.
func (u *USSR) Lookup(s string) (vec.StrRef, bool) {
	h := strhash.HashString(s)
	idx := uint32(h) & (Buckets - 1)
	extract := uint16(h >> 16)
	for i := 0; i < MaxProbe; i++ {
		b := u.buckets[(idx+uint32(i))&(Buckets-1)]
		if b == 0 {
			return 0, false
		}
		if uint16(b>>16) == extract {
			slot := uint16(b)
			if u.data[slot-1] == h && u.equalAt(slot, s) {
				return vec.USSRTag | vec.StrRef(slot), true
			}
		}
	}
	return 0, false
}

// Hash returns the pre-computed hash of a resident string: a single load
// from the slot preceding the string (Section IV-E).
func (u *USSR) Hash(r vec.StrRef) uint64 {
	if DebugAsserts {
		u.AssertResident(r)
	}
	return u.data[r.USSRSlot()-1]
}

// Get materializes the resident string r.
func (u *USSR) Get(r vec.StrRef) string {
	if DebugAsserts {
		u.AssertResident(r)
	}
	slot := r.USSRSlot()
	return string(u.bytesAt(slot))
}

// Len returns the length of the resident string r.
func (u *USSR) Len(r vec.StrRef) int { return int(u.lens[r.USSRSlot()]) }

// Bytes returns the bytes of resident string r as a fresh slice.
func (u *USSR) Bytes(r vec.StrRef) []byte {
	b := u.bytesAt(r.USSRSlot())
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// RefForSlot rebuilds a reference from a 16-bit slot number, the inverse
// of vec.StrRef.USSRSlot used when unpacking hot-area slot codes
// (Section IV-F: base address + slot*8).
func RefForSlot(slot uint16) vec.StrRef {
	return vec.USSRTag | vec.StrRef(slot)
}

func (u *USSR) bytesAt(slot uint16) []byte {
	return u.appendBytes(nil, slot)
}

// appendBytes appends the resident string's bytes to buf.
func (u *USSR) appendBytes(buf []byte, slot uint16) []byte {
	n := int(u.lens[slot])
	start := len(buf)
	buf = append(buf, make([]byte, (n+7)&^7)...)
	for i, w := 0, int(slot); i < n; i, w = i+8, w+1 {
		binary.LittleEndian.PutUint64(buf[start+i:], u.data[w])
	}
	return buf[:start+n]
}

// AppendBytes appends the bytes of resident string r to buf and returns
// the extended slice; allocation-free when buf has capacity.
func (u *USSR) AppendBytes(buf []byte, r vec.StrRef) []byte {
	return u.appendBytes(buf, r.USSRSlot())
}

// EqualBytes compares resident string r against raw bytes without
// materializing the resident string.
func (u *USSR) EqualBytes(r vec.StrRef, b []byte) bool {
	slot := r.USSRSlot()
	if int(u.lens[slot]) != len(b) {
		return false
	}
	i := 0
	w := int(slot)
	for ; i+8 <= len(b); i += 8 {
		if u.data[w] != binary.LittleEndian.Uint64(b[i:]) {
			return false
		}
		w++
	}
	if i < len(b) {
		var tail uint64
		for j := len(b) - 1; j >= i; j-- {
			tail = tail<<8 | uint64(b[j])
		}
		if u.data[w] != tail {
			return false
		}
	}
	return true
}

func (u *USSR) equalAt(slot uint16, s string) bool {
	if int(u.lens[slot]) != len(s) {
		return false
	}
	// Compare 8 bytes at a time against the slot words.
	i := 0
	w := int(slot)
	for ; i+8 <= len(s); i += 8 {
		if u.data[w] != le64str(s[i:]) {
			return false
		}
		w++
	}
	if i < len(s) {
		var tail uint64
		for j := len(s) - 1; j >= i; j-- {
			tail = tail<<8 | uint64(s[j])
		}
		if u.data[w] != tail {
			return false
		}
	}
	return true
}

func copyIntoSlots(dst []uint64, s string) {
	i := 0
	w := 0
	for ; i+8 <= len(s); i += 8 {
		dst[w] = le64str(s[i:])
		w++
	}
	if i < len(s) {
		var tail uint64
		for j := len(s) - 1; j >= i; j-- {
			tail = tail<<8 | uint64(s[j])
		}
		dst[w] = tail
	} else if len(s) == 0 && len(dst) > 0 {
		dst[0] = 0
	}
}

func le64str(s string) uint64 {
	_ = s[7]
	return uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
		uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
}
