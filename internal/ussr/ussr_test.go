package ussr

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ocht/internal/strhash"
	"ocht/internal/vec"
)

func TestInsertLookupRoundTrip(t *testing.T) {
	u := New()
	words := []string{"", "a", "Hello", "Test", "Hello World", strings.Repeat("x", 100)}
	refs := make([]vec.StrRef, len(words))
	for i, w := range words {
		r, ok := u.Insert(w)
		if !ok {
			t.Fatalf("insert %q failed", w)
		}
		refs[i] = r
		if !r.InUSSR() {
			t.Fatalf("ref for %q not tagged as USSR", w)
		}
	}
	for i, w := range words {
		if got := u.Get(refs[i]); got != w {
			t.Errorf("Get = %q, want %q", got, w)
		}
		if u.Len(refs[i]) != len(w) {
			t.Errorf("Len(%q) = %d", w, u.Len(refs[i]))
		}
		if r, ok := u.Lookup(w); !ok || r != refs[i] {
			t.Errorf("Lookup(%q) = %v,%v", w, r, ok)
		}
	}
}

func TestUniqueness(t *testing.T) {
	// Inserting the same string twice must return the same reference:
	// this is what makes pointer equality valid (Section IV-E).
	u := New()
	r1, _ := u.Insert("duplicated")
	r2, ok := u.Insert("duplicated")
	if !ok || r1 != r2 {
		t.Fatalf("duplicate insert: %v vs %v", r1, r2)
	}
	if u.Stats().Count != 1 {
		t.Errorf("count = %d, want 1", u.Stats().Count)
	}
	if u.Stats().Candidates != 2 {
		t.Errorf("candidates = %d, want 2", u.Stats().Candidates)
	}
}

func TestPrecomputedHash(t *testing.T) {
	u := New()
	s := "precomputed hash lives in the slot before the string"
	r, _ := u.Insert(s)
	if u.Hash(r) != strhash.HashString(s) {
		t.Error("stored hash must equal the string hash")
	}
}

func TestSlotNumberRoundTrip(t *testing.T) {
	// Section IV-F: a USSR string is translated to a 16-bit slot number
	// and back (base + slot*8).
	u := New()
	r, _ := u.Insert("slot-coded")
	slot := r.USSRSlot()
	if slot == 0 {
		t.Fatal("slot 0 is reserved for exceptions")
	}
	if RefForSlot(slot) != r {
		t.Error("RefForSlot must invert USSRSlot")
	}
}

func TestLongStringRejected(t *testing.T) {
	u := New()
	// Fresh region: free = 65535, limit = free/64 = 1023 slots (~8 kB).
	big := strings.Repeat("y", 9000) // needs 1126 slots > 1023
	if _, ok := u.Insert(big); ok {
		t.Fatal("9 kB string must be rejected by the sampling policy")
	}
	st := u.Stats()
	if st.Rejected != 1 || st.Count != 0 {
		t.Errorf("stats after rejection: %+v", st)
	}
	// An 8 kB-ish string below the limit is accepted.
	if _, ok := u.Insert(strings.Repeat("z", 8000)); !ok {
		t.Error("8 kB string should fit under the initial limit")
	}
}

func TestFillUpAndReject(t *testing.T) {
	u := New()
	inserted, rejected := 0, 0
	for i := 0; ; i++ {
		s := fmt.Sprintf("string-%08d-%s", i, strings.Repeat("p", 40))
		if _, ok := u.Insert(s); ok {
			inserted++
		} else {
			rejected++
			if rejected > 100 {
				break
			}
		}
		if i > 100_000 {
			t.Fatal("the region never filled up")
		}
	}
	st := u.Stats()
	if st.SizeBytes > DataSlots*8 {
		t.Errorf("size %d exceeds the 512 kB region", st.SizeBytes)
	}
	if inserted == 0 || st.Count != inserted {
		t.Errorf("inserted=%d stats=%+v", inserted, st)
	}
	// All previously inserted strings must still be retrievable.
	for i := 0; i < 10; i++ {
		s := fmt.Sprintf("string-%08d-%s", i, strings.Repeat("p", 40))
		if _, ok := u.Lookup(s); !ok {
			t.Errorf("string %d lost after fill-up", i)
		}
	}
}

func TestCapacityBound(t *testing.T) {
	// Each string takes >= 2 slots, so at most 32 k strings fit.
	u := New()
	n := 0
	for i := 0; i < 50_000; i++ {
		if _, ok := u.Insert(fmt.Sprintf("%07d", i)); ok {
			n++
		}
	}
	if n > DataSlots/2 {
		t.Errorf("%d strings exceed the 32 k structural bound", n)
	}
	if n < 20_000 {
		t.Errorf("only %d short strings fit; expected tens of thousands", n)
	}
}

func TestRejectionRatio(t *testing.T) {
	s := Stats{Candidates: 200, Rejected: 50}
	if s.RejectionRatio() != 25 {
		t.Errorf("ratio = %f", s.RejectionRatio())
	}
	if (Stats{}).RejectionRatio() != 0 {
		t.Error("empty ratio")
	}
}

func TestReset(t *testing.T) {
	u := New()
	u.Insert("before reset")
	u.Reset()
	if _, ok := u.Lookup("before reset"); ok {
		t.Error("lookup must miss after Reset")
	}
	st := u.Stats()
	if st.Count != 0 || st.SizeBytes != 0 || st.Candidates != 0 {
		t.Errorf("stats after reset: %+v", st)
	}
	if _, ok := u.Insert("after reset"); !ok {
		t.Error("insert after reset")
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := New()
	oracle := map[string]vec.StrRef{}
	for i := 0; i < 20_000; i++ {
		s := fmt.Sprintf("k%d", rng.Intn(5000))
		r, ok := u.Insert(s)
		if !ok {
			continue
		}
		if prev, seen := oracle[s]; seen {
			if prev != r {
				t.Fatalf("string %q changed reference", s)
			}
		} else {
			oracle[s] = r
		}
		if u.Get(r) != s {
			t.Fatalf("Get(%q) mismatch", s)
		}
	}
	if len(oracle) == 0 {
		t.Fatal("nothing inserted")
	}
}
