//go:build ocht_debug

package vec

import "testing"

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected assertion panic, got none", name)
		}
	}()
	f()
}

// TestAssertSelCorrupted deliberately corrupts selection vectors in each
// of the ways a broken kernel could, and checks the assertion fires.
func TestAssertSelCorrupted(t *testing.T) {
	mustPanic(t, "descending", func() {
		AssertSel([]int32{5, 3, 7}, MaxLen)
	})
	mustPanic(t, "duplicate", func() {
		AssertSel([]int32{3, 3}, MaxLen)
	})
	mustPanic(t, "out of range", func() {
		AssertSel([]int32{0, int32(MaxLen)}, MaxLen)
	})
	mustPanic(t, "negative", func() {
		AssertSel([]int32{-1}, MaxLen)
	})
	mustPanic(t, "past physical rows", func() {
		AssertSel([]int32{0, 8}, 8)
	})
	mustPanic(t, "too long", func() {
		sel := make([]int32, MaxLen+1)
		for i := range sel {
			sel[i] = int32(i)
		}
		AssertSel(sel, MaxLen+2)
	})
}

func TestAssertSelValid(t *testing.T) {
	AssertSel(nil, MaxLen)
	AssertSel([]int32{}, MaxLen)
	AssertSel([]int32{0}, 1)
	AssertSel([]int32{2, 5, 1023}, MaxLen)
	AssertSel(FullSel, MaxLen)
}

func TestDebugAssertsEnabled(t *testing.T) {
	if !DebugAsserts {
		t.Fatal("ocht_debug build must set DebugAsserts")
	}
}

// TestAssertEncHandled checks the encswitch runtime twin: an encoding
// outside the dispatch's handled set panics, members pass.
func TestAssertEncHandled(t *testing.T) {
	v := New(I64, 4)
	AssertEncHandled(v, EncPlain, EncDict, EncPacked)
	AssertEncHandled(v, EncPlain)
	v.Enc = EncPacked
	AssertEncHandled(v, EncPacked)
	mustPanic(t, "packed not handled", func() {
		AssertEncHandled(v, EncPlain, EncDict)
	})
	v.Enc = EncDict
	mustPanic(t, "dict not handled", func() {
		AssertEncHandled(v, EncPlain)
	})
}
