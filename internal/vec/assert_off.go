//go:build !ocht_debug

package vec

// DebugAsserts reports whether the ocht_debug assertion layer is compiled
// in. This is the release build: the assertions below are empty and
// inline to nothing.
const DebugAsserts = false

// AssertSel is a no-op in release builds; see assert_on.go.
func AssertSel(sel []int32, phys int) {}

// AssertEncHandled is a no-op in release builds; see assert_on.go.
func AssertEncHandled(v *Vector, handled ...Encoding) {}
