//go:build ocht_debug

package vec

import "fmt"

// DebugAsserts reports whether the ocht_debug assertion layer is compiled
// in. Release builds compile the assertions out entirely (assert_off.go).
const DebugAsserts = true

// AssertSel panics if sel is not a valid selection vector over phys
// physical rows: at most MaxLen entries, each in [0, phys), strictly
// ascending. Selection vectors are ordered subsets of physical positions
// (the selvec analyzer enforces the same invariant statically); a
// violation here means a kernel wrote garbage positions.
func AssertSel(sel []int32, phys int) {
	if sel == nil {
		return
	}
	if len(sel) > MaxLen {
		panic(fmt.Sprintf("vec: selection vector has %d entries, max %d", len(sel), MaxLen))
	}
	prev := int32(-1)
	for i, r := range sel {
		if int(r) < 0 || int(r) >= phys {
			panic(fmt.Sprintf("vec: selection entry sel[%d] = %d outside [0, %d)", i, r, phys))
		}
		if r <= prev {
			panic(fmt.Sprintf("vec: selection vector not strictly ascending at sel[%d]: %d after %d", i, r, prev))
		}
		prev = r
	}
}

// AssertEncHandled panics if v's encoding is not one of the listed
// handled encodings. It is the runtime twin of the encswitch analyzer:
// materialization boundaries (exec.ensurePlain) call it with the
// encodings their dispatch covers, so a new encoding added to the enum
// trips a debug-build panic at every dispatch the static check missed.
func AssertEncHandled(v *Vector, handled ...Encoding) {
	for _, e := range handled {
		if v.Enc == e {
			return
		}
	}
	panic(fmt.Sprintf("vec: encoding %d not handled at this dispatch (handled: %v)", v.Enc, handled))
}
