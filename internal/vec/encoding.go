package vec

// Encoding enumerates the in-flight vector representations. The engine's
// compressed-execution model (MorphStore-style holistic processing) lets a
// scan emit blocks in their stored form; operators either understand the
// encoding (filters compare in the pack domain, pre-filter dictionary code
// tables) or materialize the active rows into a plain scratch vector at
// their input boundary.
type Encoding uint8

// Vector encodings.
const (
	// EncPlain is the classic decompressed form: one typed slice.
	EncPlain Encoding = iota
	// EncDict is a dictionary-coded string vector: per-row codes plus a
	// per-block code -> StrRef table.
	EncDict
	// EncPacked is a frame-of-reference bit-packed integer vector.
	EncPacked
)

// String returns the lowercase encoding name.
func (e Encoding) String() string {
	switch e {
	case EncPlain:
		return "plain"
	case EncDict:
		return "dict"
	case EncPacked:
		return "packed"
	default:
		return "invalid"
	}
}

// IsPlain reports whether the vector holds decompressed data.
func (v *Vector) IsPlain() bool { return v.Enc == EncPlain }

// packedAt extracts the frame-of-reference value at row i.
//
//ocht:hot
func (v *Vector) packedAt(i int) int64 {
	per := 64 / v.PackBits
	j := v.PackOff + i
	w := v.Packed[j/per]
	off := (w >> (uint(j%per) * uint(v.PackBits))) & (1<<uint(v.PackBits) - 1)
	return v.PackMin + int64(off)
}

// StrRefAt returns the string reference at physical position i, decoding
// dictionary codes through the per-block reference table.
//
//ocht:hot
func (v *Vector) StrRefAt(i int) StrRef {
	if v.Enc == EncDict {
		if v.Codes != nil {
			return v.DictRefs[v.Codes[i]]
		}
		return v.DictRefs[v.packedAt(i)]
	}
	return v.Str[i]
}

// CodeAt returns the dictionary code at physical position i of an EncDict
// vector, reading either the plain code slice or the bit-packed code words
// a compressed sealed block aliases into the view (PackMin is always 0
// for code words).
//
//ocht:hot
func (v *Vector) CodeAt(i int) int32 {
	if v.Codes != nil {
		return v.Codes[i]
	}
	return int32(v.packedAt(i))
}

// MaterializeInto decodes every row of v into dst, which must be a plain
// vector of the same type with capacity >= v.Len(). The NULL mask is
// aliased (physical positions are unchanged by decoding). Plain sources
// are copied.
func (v *Vector) MaterializeInto(dst *Vector) {
	n := v.Len()
	dst.Nulls = v.Nulls
	switch v.Enc {
	case EncDict:
		out := dst.Str[:n]
		if v.Codes != nil {
			for i, c := range v.Codes {
				out[i] = v.DictRefs[c]
			}
		} else {
			for i := 0; i < n; i++ {
				out[i] = v.DictRefs[v.packedAt(i)]
			}
		}
	case EncPacked:
		bits := uint(v.PackBits)
		per := 64 / v.PackBits
		mask := uint64(1)<<bits - 1
		switch v.Typ {
		case I8:
			out := dst.I8[:n]
			for i := 0; i < n; i++ {
				j := v.PackOff + i
				out[i] = int8(v.PackMin + int64((v.Packed[j/per]>>(uint(j%per)*bits))&mask))
			}
		case I16:
			out := dst.I16[:n]
			for i := 0; i < n; i++ {
				j := v.PackOff + i
				out[i] = int16(v.PackMin + int64((v.Packed[j/per]>>(uint(j%per)*bits))&mask))
			}
		case I32:
			out := dst.I32[:n]
			for i := 0; i < n; i++ {
				j := v.PackOff + i
				out[i] = int32(v.PackMin + int64((v.Packed[j/per]>>(uint(j%per)*bits))&mask))
			}
		case I64:
			out := dst.I64[:n]
			for i := 0; i < n; i++ {
				j := v.PackOff + i
				out[i] = v.PackMin + int64((v.Packed[j/per]>>(uint(j%per)*bits))&mask)
			}
		default:
			panic("vec: packed vector of type " + v.Typ.String())
		}
	default:
		switch v.Typ {
		case Bool:
			copy(dst.Bool, v.Bool)
		case I8:
			copy(dst.I8, v.I8)
		case I16:
			copy(dst.I16, v.I16)
		case I32:
			copy(dst.I32, v.I32)
		case I64:
			copy(dst.I64, v.I64)
		case I128:
			copy(dst.I128, v.I128)
		case F64:
			copy(dst.F64, v.F64)
		case Str:
			copy(dst.Str, v.Str)
		}
	}
}

// MaterializeRowsInto decodes only the given physical rows of v into the
// same positions of dst — the late-materialization step: rows shed by
// filters or Bloom passes never pay decompression. dst must be a plain
// vector of the same type sized to cover every row position; the NULL mask
// is aliased.
//
//ocht:hot
func (v *Vector) MaterializeRowsInto(dst *Vector, rows []int32) {
	dst.Nulls = v.Nulls
	switch v.Enc {
	case EncDict:
		if v.Codes != nil {
			for _, r := range rows {
				dst.Str[r] = v.DictRefs[v.Codes[r]]
			}
		} else {
			for _, r := range rows {
				dst.Str[r] = v.DictRefs[v.packedAt(int(r))]
			}
		}
	case EncPacked:
		bits := uint(v.PackBits)
		p := 64 / v.PackBits
		mask := uint64(1)<<bits - 1
		switch v.Typ {
		case I8:
			for _, r := range rows {
				j := v.PackOff + int(r)
				dst.I8[r] = int8(v.PackMin + int64((v.Packed[j/p]>>(uint(j%p)*bits))&mask))
			}
		case I16:
			for _, r := range rows {
				j := v.PackOff + int(r)
				dst.I16[r] = int16(v.PackMin + int64((v.Packed[j/p]>>(uint(j%p)*bits))&mask))
			}
		case I32:
			for _, r := range rows {
				j := v.PackOff + int(r)
				dst.I32[r] = int32(v.PackMin + int64((v.Packed[j/p]>>(uint(j%p)*bits))&mask))
			}
		case I64:
			for _, r := range rows {
				j := v.PackOff + int(r)
				dst.I64[r] = v.PackMin + int64((v.Packed[j/p]>>(uint(j%p)*bits))&mask)
			}
		default:
			badType("vec: packed vector of type ", v.Typ)
		}
	default:
		switch v.Typ {
		case Bool:
			for _, r := range rows {
				dst.Bool[r] = v.Bool[r]
			}
		case I8:
			for _, r := range rows {
				dst.I8[r] = v.I8[r]
			}
		case I16:
			for _, r := range rows {
				dst.I16[r] = v.I16[r]
			}
		case I32:
			for _, r := range rows {
				dst.I32[r] = v.I32[r]
			}
		case I64:
			for _, r := range rows {
				dst.I64[r] = v.I64[r]
			}
		case I128:
			for _, r := range rows {
				dst.I128[r] = v.I128[r]
			}
		case F64:
			for _, r := range rows {
				dst.F64[r] = v.F64[r]
			}
		case Str:
			for _, r := range rows {
				dst.Str[r] = v.Str[r]
			}
		}
	}
}

// Materialize returns v unchanged when it is already plain, otherwise a
// freshly allocated plain vector holding the decoded values — the mandatory
// fallback path: every operator works on the result regardless of what a
// scan emitted.
func (v *Vector) Materialize() *Vector {
	if v.Enc == EncPlain {
		return v
	}
	dst := New(v.Typ, v.Len())
	v.MaterializeInto(dst)
	return dst
}
