package vec

import "testing"

// packInto packs vals as offsets from min at the given bit width, the
// layout EncPacked vectors decode (no value crosses a word boundary).
func packInto(vals []int64, min int64, bits int) []uint64 {
	per := 64 / bits
	words := make([]uint64, (len(vals)+per-1)/per)
	for i, v := range vals {
		off := uint64(v - min)
		words[i/per] |= off << (uint(i%per) * uint(bits))
	}
	return words
}

func packedVec(t Type, vals []int64, min int64, bits, off int) *Vector {
	padded := make([]int64, off+len(vals))
	for i := range padded[:off] {
		padded[i] = min
	}
	copy(padded[off:], vals)
	return &Vector{
		Typ: t, Enc: EncPacked,
		Packed:   packInto(padded, min, bits),
		PackBits: bits, PackMin: min, PackOff: off, PackLen: len(vals),
	}
}

func TestPackedAccessors(t *testing.T) {
	vals := []int64{100, 107, 100, 163, 101}
	for _, off := range []int{0, 1, 7, 13} {
		v := packedVec(I64, vals, 100, 7, off)
		if v.Len() != len(vals) {
			t.Fatalf("off %d: Len %d", off, v.Len())
		}
		for i, want := range vals {
			if got := v.Int64At(i); got != want {
				t.Errorf("off %d: Int64At(%d) = %d, want %d", off, i, got, want)
			}
		}
	}
}

func TestPackedMaterialize(t *testing.T) {
	vals := []int64{-5, -3, -5, 2, 0, -1}
	v := packedVec(I32, vals, -5, 3, 2)
	m := v.Materialize()
	if !m.IsPlain() || m.Typ != I32 || m.Len() != len(vals) {
		t.Fatalf("materialized %v enc=%v len=%d", m.Typ, m.Enc, m.Len())
	}
	for i, want := range vals {
		if got := int64(m.I32[i]); got != want {
			t.Errorf("row %d: %d want %d", i, got, want)
		}
	}
	// Selected-rows path writes only the chosen physical positions.
	dst := New(I32, len(vals))
	for i := range dst.I32 {
		dst.I32[i] = 99
	}
	v.MaterializeRowsInto(dst, []int32{1, 3})
	if dst.I32[1] != -3 || dst.I32[3] != 2 {
		t.Errorf("selected rows: %v", dst.I32)
	}
	if dst.I32[0] != 99 || dst.I32[2] != 99 {
		t.Errorf("unselected rows must stay untouched: %v", dst.I32)
	}
}

func TestDictAccessors(t *testing.T) {
	refs := []StrRef{10, 20, 30}
	v := &Vector{Typ: Str, Enc: EncDict, Codes: []int32{2, 0, 1, 0}, DictRefs: refs}
	if v.Len() != 4 {
		t.Fatalf("Len %d", v.Len())
	}
	want := []StrRef{30, 10, 20, 10}
	for i, w := range want {
		if got := v.StrRefAt(i); got != w {
			t.Errorf("StrRefAt(%d) = %d, want %d", i, got, w)
		}
	}
	m := v.Materialize()
	for i, w := range want {
		if m.Str[i] != w {
			t.Errorf("materialized row %d: %d want %d", i, m.Str[i], w)
		}
	}
	if m.StrRefAt(2) != 20 {
		t.Error("StrRefAt must work on plain vectors too")
	}
}

func TestEncodedNullsAliased(t *testing.T) {
	v := &Vector{Typ: Str, Enc: EncDict, Codes: []int32{0, 1}, DictRefs: []StrRef{5, 6},
		Nulls: []bool{false, true}}
	m := v.Materialize()
	if !m.IsNull(1) || m.IsNull(0) {
		t.Error("NULL mask must survive materialization")
	}
}
