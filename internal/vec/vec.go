// Package vec provides the vectorized execution substrate: typed column
// vectors, selection vectors and batches.
//
// Like the paper's engine (Vectorwise), all primitives in this repository
// process cache-resident vectors of (by default) 1024 values in tight
// loops, optionally restricted by a selection vector.
package vec

import "ocht/internal/i128"

// Size is the default number of values per vector.
const Size = 1024

// MaxLen is the batch capacity: every selection-vector entry is a
// physical row position and must stay below it. The selvec analyzer and
// the ocht_debug AssertSel check both enforce this bound.
const MaxLen = Size

// Type enumerates the physical column types the engine understands.
type Type uint8

// Physical types.
const (
	Bool Type = iota
	I8
	I16
	I32
	I64
	I128
	F64
	Str // string reference (StrRef)
)

// String returns the lowercase type name.
func (t Type) String() string {
	switch t {
	case Bool:
		return "bool"
	case I8:
		return "i8"
	case I16:
		return "i16"
	case I32:
		return "i32"
	case I64:
		return "i64"
	case I128:
		return "i128"
	case F64:
		return "f64"
	case Str:
		return "str"
	default:
		return "invalid"
	}
}

// Width returns the byte width of one value of type t as materialized in a
// hash-table record (string refs are 8-byte handles, like the paper's
// 64-bit string pointers).
func (t Type) Width() int {
	switch t {
	case Bool, I8:
		return 1
	case I16:
		return 2
	case I32:
		return 4
	case I64, F64, Str:
		return 8
	case I128:
		return 16
	default:
		return 0
	}
}

// Bits returns the bit width of type t.
func (t Type) Bits() int { return t.Width() * 8 }

// IsInt reports whether t is one of the integer types the prefix-suppression
// kernels can pack.
func (t Type) IsInt() bool {
	switch t {
	case I8, I16, I32, I64, I128:
		return true
	}
	return false
}

// StrRef is a 64-bit string handle. In the paper strings in-flight are raw
// pointers, and USSR residency is tested with a mask on the pointer bits.
// Go forbids that, so a StrRef is a tagged handle:
//
//   - USSR-resident strings: ussrTag | slot, where slot is the 16-bit slot
//     number of the string's first data word in the USSR region.
//   - Heap strings: the arena offset in the query's string heap.
//
// The residency test is the same single mask-and-compare as the paper's
// pointer test. Ref 0 is reserved as the invalid/exception marker used by
// Optimistic Splitting (Section IV-F).
type StrRef uint64

// USSRTag is the tag bit marking a StrRef as USSR-resident. It mirrors the
// fixed 45-bit pointer prefix of the paper's self-aligned region.
const USSRTag StrRef = 1 << 63

// InUSSR reports whether r refers into the USSR region.
func (r StrRef) InUSSR() bool { return r&USSRTag != 0 }

// USSRSlot returns the 16-bit USSR slot number of r. Only meaningful when
// InUSSR() is true. This is the paper's "(p >> 3) & 65535".
func (r StrRef) USSRSlot() uint16 { return uint16(r) }

// HeapOffset returns the string-heap offset of r. Only meaningful when
// InUSSR() is false.
func (r StrRef) HeapOffset() uint64 { return uint64(r) &^ uint64(USSRTag) }

// Vector is a typed array of values. For plain vectors exactly one of the
// data slices is non-nil, matching Typ. Nulls, when non-nil, marks NULL
// values at the same physical positions as the data.
//
// A vector may instead carry a compressed encoding (Enc != EncPlain), in
// which case the plain data slice is nil and the values live in the
// encoding-specific fields below. The virtual accessors (Int64At, StrRefAt)
// decode transparently; operators that need raw slices call Materialize
// first. This is the holistic compressed-execution exchange format: scans
// emit blocks in their stored encoding and operators materialize late.
type Vector struct {
	Typ   Type
	Nulls []bool

	Bool []bool
	I8   []int8
	I16  []int16
	I32  []int32
	I64  []int64
	I128 []i128.Int
	F64  []float64
	Str  []StrRef

	// Enc selects the in-flight representation; EncPlain (the zero value)
	// means the typed slice above holds the data directly.
	Enc Encoding

	// EncDict (Str only): Codes holds per-row dictionary codes into
	// DictRefs, the per-block code -> string-reference table. DictRefs are
	// ordinary StrRefs (USSR-resident or heap), so string resolution stays
	// a plain array lookup at emission time. When Codes is nil the codes
	// are instead bit-packed in the Packed* fields below (PackMin 0) —
	// the zero-copy view of a compressed sealed block's code column; use
	// CodeAt/StrRefAt, or branch on Codes once per kernel.
	Codes    []int32
	DictRefs []StrRef

	// EncPacked (integer types): values are stored as PackBits-wide
	// unsigned offsets from PackMin (frame of reference), packed into
	// 64-bit words without crossing word boundaries — the same layout the
	// prefix-suppression kernels use. PackOff is the offset of this view's
	// row 0 within Packed (vector windows over a block share the block's
	// words) and PackLen the number of rows.
	Packed   []uint64
	PackBits int
	PackMin  int64
	PackOff  int
	PackLen  int
}

// New allocates a vector of n values of type t.
func New(t Type, n int) *Vector {
	v := &Vector{Typ: t}
	switch t {
	case Bool:
		v.Bool = make([]bool, n)
	case I8:
		v.I8 = make([]int8, n)
	case I16:
		v.I16 = make([]int16, n)
	case I32:
		v.I32 = make([]int32, n)
	case I64:
		v.I64 = make([]int64, n)
	case I128:
		v.I128 = make([]i128.Int, n)
	case F64:
		v.F64 = make([]float64, n)
	case Str:
		v.Str = make([]StrRef, n)
	}
	return v
}

// Len returns the physical length of the vector.
func (v *Vector) Len() int {
	switch v.Enc {
	case EncDict:
		if v.Codes != nil {
			return len(v.Codes)
		}
		return v.PackLen // bit-packed codes from a compressed sealed block
	case EncPacked:
		return v.PackLen
	case EncPlain:
		// length lives in the typed payload slice below
	}
	switch v.Typ {
	case Bool:
		return len(v.Bool)
	case I8:
		return len(v.I8)
	case I16:
		return len(v.I16)
	case I32:
		return len(v.I32)
	case I64:
		return len(v.I64)
	case I128:
		return len(v.I128)
	case F64:
		return len(v.F64)
	case Str:
		return len(v.Str)
	}
	return 0
}

// Int64At returns the value at physical position i widened to int64.
// It panics for non-integer vectors.
//
//ocht:hot
func (v *Vector) Int64At(i int) int64 {
	if v.Enc == EncPacked {
		return v.packedAt(i)
	}
	switch v.Typ {
	case I8:
		return int64(v.I8[i])
	case I16:
		return int64(v.I16[i])
	case I32:
		return int64(v.I32[i])
	case I64:
		return v.I64[i]
	case Bool:
		if v.Bool[i] {
			return 1
		}
		return 0
	}
	badType("vec: Int64At on ", v.Typ)
	return 0
}

// badType panics for an unsupported vector type. It is hoisted out of the
// hot kernels so the panic's interface boxing stays off their code path.
func badType(msg string, t Type) {
	panic(msg + t.String())
}

// SetInt64 stores x at physical position i, narrowing to the vector type.
func (v *Vector) SetInt64(i int, x int64) {
	switch v.Typ {
	case I8:
		v.I8[i] = int8(x)
	case I16:
		v.I16[i] = int16(x)
	case I32:
		v.I32[i] = int32(x)
	case I64:
		v.I64[i] = x
	case Bool:
		v.Bool[i] = x != 0
	default:
		panic("vec: SetInt64 on " + v.Typ.String())
	}
}

// IsNull reports whether position i is NULL.
func (v *Vector) IsNull(i int) bool {
	return v.Nulls != nil && v.Nulls[i]
}

// SetNull marks position i as NULL, allocating the null mask on first use.
func (v *Vector) SetNull(i int) {
	if v.Nulls == nil {
		v.Nulls = make([]bool, v.Len())
	}
	v.Nulls[i] = true
}

// HasNulls reports whether any position is NULL.
func (v *Vector) HasNulls() bool {
	for _, n := range v.Nulls {
		if n {
			return true
		}
	}
	return false
}

// Batch is a set of equally-sized vectors plus an optional selection vector.
// When Sel is non-nil the active rows are the physical positions
// Sel[0:N]; otherwise the active rows are 0..N-1.
type Batch struct {
	Vecs []*Vector
	Sel  []int32
	N    int
}

// NewBatch allocates a batch of vectors with the given types, each of
// capacity Size.
func NewBatch(types ...Type) *Batch {
	b := &Batch{Vecs: make([]*Vector, len(types))}
	for i, t := range types {
		b.Vecs[i] = New(t, Size)
	}
	return b
}

// FullSel is a reusable identity selection vector of length Size.
var FullSel = func() []int32 {
	s := make([]int32, Size)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}()

// Rows returns the active physical row positions of the batch. When no
// selection vector is set it returns a shared identity vector, so callers
// must not modify the result.
func (b *Batch) Rows() []int32 {
	if b.Sel != nil {
		return b.Sel[:b.N]
	}
	if b.N <= Size {
		return FullSel[:b.N]
	}
	s := make([]int32, b.N)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

// Selectivity returns the active fraction N / physical length, used by the
// micro-adaptive full-vector packing decision (Section II-C).
func (b *Batch) Selectivity() float64 {
	if b.Sel == nil || len(b.Sel) == 0 {
		return 1
	}
	phys := 0
	for _, v := range b.Vecs {
		if l := v.Len(); l > phys {
			phys = l
		}
	}
	if phys == 0 {
		return 1
	}
	return float64(b.N) / float64(phys)
}
