package vec

import "testing"

func TestTypeWidths(t *testing.T) {
	cases := map[Type]int{
		Bool: 1, I8: 1, I16: 2, I32: 4, I64: 8, F64: 8, Str: 8, I128: 16,
	}
	for typ, want := range cases {
		if typ.Width() != want {
			t.Errorf("%v width %d want %d", typ, typ.Width(), want)
		}
		if typ.Bits() != want*8 {
			t.Errorf("%v bits", typ)
		}
	}
}

func TestIsInt(t *testing.T) {
	for _, typ := range []Type{I8, I16, I32, I64, I128} {
		if !typ.IsInt() {
			t.Errorf("%v should be int", typ)
		}
	}
	for _, typ := range []Type{Bool, F64, Str} {
		if typ.IsInt() {
			t.Errorf("%v should not be int", typ)
		}
	}
}

func TestNewAndLen(t *testing.T) {
	for _, typ := range []Type{Bool, I8, I16, I32, I64, I128, F64, Str} {
		v := New(typ, 17)
		if v.Len() != 17 {
			t.Errorf("%v Len %d", typ, v.Len())
		}
	}
}

func TestInt64RoundTrip(t *testing.T) {
	for _, typ := range []Type{I8, I16, I32, I64} {
		v := New(typ, 4)
		v.SetInt64(2, -5)
		if v.Int64At(2) != -5 {
			t.Errorf("%v round trip", typ)
		}
	}
	b := New(Bool, 2)
	b.SetInt64(1, 1)
	if b.Int64At(1) != 1 || b.Int64At(0) != 0 {
		t.Error("bool round trip")
	}
}

func TestNullMask(t *testing.T) {
	v := New(I64, 8)
	if v.IsNull(3) {
		t.Error("fresh vector has no nulls")
	}
	v.SetNull(3)
	if !v.IsNull(3) || v.IsNull(2) {
		t.Error("null mask")
	}
	if !v.HasNulls() {
		t.Error("HasNulls")
	}
}

func TestStrRefTagging(t *testing.T) {
	heap := StrRef(12345)
	if heap.InUSSR() {
		t.Error("plain offset must not read as USSR")
	}
	if heap.HeapOffset() != 12345 {
		t.Error("heap offset")
	}
	u := USSRTag | StrRef(777)
	if !u.InUSSR() || u.USSRSlot() != 777 {
		t.Error("USSR tagging")
	}
}

func TestBatchRowsAndSelectivity(t *testing.T) {
	b := NewBatch(I64, Str)
	b.N = 100
	rows := b.Rows()
	if len(rows) != 100 || rows[99] != 99 {
		t.Error("identity rows")
	}
	if b.Selectivity() != 1 {
		t.Error("full selectivity")
	}
	b.Sel = []int32{5, 10, 15}
	b.N = 3
	rows = b.Rows()
	if len(rows) != 3 || rows[2] != 15 {
		t.Error("selection rows")
	}
	if s := b.Selectivity(); s <= 0 || s >= 0.01 {
		t.Errorf("selectivity %f", s)
	}
}
