// Package ocht is the public API of the optimistically-compressed-hash-
// tables engine: a vectorized analytical query engine implementing the
// three techniques of Gubner, Leis and Boncz, "Efficient Query Processing
// with Optimistically Compressed Hash Tables & Strings in the USSR"
// (ICDE 2020):
//
//   - Domain-Guided Prefix Suppression — bit-packing hash-table keys and
//     payloads using min/max domain information,
//   - Optimistic Splitting — hot/cold decomposition of aggregates and
//     exceptions,
//   - the USSR — a query-lifetime dictionary of frequent strings with
//     pre-computed hashes and reference equality.
//
// Basic usage:
//
//	db := ocht.NewDB()
//	b := db.CreateTable("sales", ocht.ColStr("region"), ocht.ColInt64("amount"))
//	b.Row("north", 100).Row("south", 250)
//	b.Finish()
//
//	q := db.Query(ocht.All()).
//		Scan("sales").
//		GroupBy("region").
//		Agg(ocht.Sum("amount"), ocht.CountAll())
//	res := q.Run()
//	fmt.Println(res)
//
// The per-query Flags select which techniques run; ocht.Vanilla() is the
// uncompressed baseline every experiment compares against.
package ocht

import (
	"fmt"
	"io"

	"ocht/internal/agg"
	"ocht/internal/core"
	"ocht/internal/exec"
	"ocht/internal/sql"
	"ocht/internal/storage"
	"ocht/internal/vec"
)

// Flags selects the paper's techniques per query.
type Flags = core.Flags

// Vanilla returns the baseline configuration (no compression, no
// splitting, heap strings).
func Vanilla() Flags { return core.Vanilla() }

// All enables Domain-Guided Prefix Suppression, Optimistic Splitting and
// the USSR.
func All() Flags { return core.All() }

// Result is a materialized query result.
type Result = exec.Result

// DB is a catalog of in-memory columnar tables.
type DB struct {
	cat *storage.Catalog
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{cat: storage.NewCatalog()} }

// Open loads a database previously written with Save.
func Open(dir string) (*DB, error) {
	cat, err := storage.LoadCatalog(dir)
	if err != nil {
		return nil, err
	}
	return &DB{cat: cat}, nil
}

// Save writes every table to <dir>/<table>.ocht in the engine's columnar
// format (blocks, per-block dictionaries, zone maps in the footer).
func (db *DB) Save(dir string) error { return db.cat.Save(dir) }

// ImportCSV loads a CSV stream (with a header row) as a new table,
// inferring int64/float64/string column types and nullability from the
// data.
func (db *DB) ImportCSV(name string, r io.Reader) error {
	t, err := storage.ReadCSV(name, r, storage.CSVOptions{Header: true})
	if err != nil {
		return err
	}
	db.cat.Add(t)
	return nil
}

// ExportCSV writes a table as CSV with a header row.
func (db *DB) ExportCSV(w io.Writer, table string) error {
	return storage.WriteCSV(w, db.cat.Table(table), storage.CSVOptions{})
}

// ColSpec declares a column of a new table.
type ColSpec struct {
	Name     string
	Type     vec.Type
	Nullable bool
}

// ColInt64 declares a 64-bit integer column.
func ColInt64(name string) ColSpec { return ColSpec{Name: name, Type: vec.I64} }

// ColInt32 declares a 32-bit integer column.
func ColInt32(name string) ColSpec { return ColSpec{Name: name, Type: vec.I32} }

// ColFloat declares a float64 column.
func ColFloat(name string) ColSpec { return ColSpec{Name: name, Type: vec.F64} }

// ColStr declares a string column (dictionary-compressed per block).
func ColStr(name string) ColSpec { return ColSpec{Name: name, Type: vec.Str} }

// Null marks a column spec nullable.
func (c ColSpec) Null() ColSpec { c.Nullable = true; return c }

// Builder loads rows into a new table.
type Builder struct {
	db   *DB
	tab  *storage.Table
	cols []*storage.Column
}

// CreateTable registers a new table and returns its row builder.
func (db *DB) CreateTable(name string, specs ...ColSpec) *Builder {
	cols := make([]*storage.Column, len(specs))
	for i, s := range specs {
		cols[i] = storage.NewColumn(s.Name, s.Type, s.Nullable)
	}
	tab := storage.NewTable(name, cols...)
	return &Builder{db: db, tab: tab, cols: cols}
}

// Row appends one row; values must match the column order and types:
// int/int64/int32 for integer columns, float64, string, or nil for NULL.
func (b *Builder) Row(values ...interface{}) *Builder {
	if len(values) != len(b.cols) {
		panic(fmt.Sprintf("ocht: row has %d values, table has %d columns", len(values), len(b.cols)))
	}
	for i, v := range values {
		c := b.cols[i]
		switch x := v.(type) {
		case nil:
			c.AppendNull()
		case int:
			c.AppendInt(int64(x))
		case int32:
			c.AppendInt(int64(x))
		case int64:
			c.AppendInt(x)
		case float64:
			c.AppendFloat(x)
		case string:
			c.AppendString(x)
		default:
			panic(fmt.Sprintf("ocht: unsupported value %T for column %s", v, c.Name))
		}
	}
	return b
}

// Finish seals the table and registers it with the database.
func (b *Builder) Finish() {
	b.tab.Seal()
	b.db.cat.Add(b.tab)
}

// Catalog exposes the underlying storage catalog (for the workload
// generators in internal/tpch and internal/bi).
func (db *DB) Catalog() *storage.Catalog { return db.cat }

// AddTable registers an externally built storage table.
func (db *DB) AddTable(t *storage.Table) { db.cat.Add(t) }

// Query starts a fluent query under the given flags.
func (db *DB) Query(flags Flags) *Query {
	return &Query{db: db, qc: exec.NewQCtx(flags)}
}

// SQL parses and executes a SELECT statement under the given flags.
// The supported subset: expressions with arithmetic, comparisons,
// AND/OR/NOT, LIKE, IN, BETWEEN, IS [NOT] NULL, CASE, SUBSTRING and
// CAST(... AS FLOAT); SUM/COUNT/MIN/MAX/AVG aggregates; INNER and LEFT
// JOINs on equality conditions; WHERE, GROUP BY, HAVING, ORDER BY, LIMIT.
func (db *DB) SQL(flags Flags, query string) (*Result, error) {
	return sql.Run(query, db.cat, exec.NewQCtx(flags))
}

// SQLWithContext executes a SELECT statement under an existing query
// context, so callers can inspect footprints and primitive timings after
// the run.
func (db *DB) SQLWithContext(qc *exec.QCtx, query string) (*Result, error) {
	return sql.Run(query, db.cat, qc)
}

// Query is a fluent single-pipeline query builder: scan, optional filter,
// group-by with aggregates, order and limit. For arbitrary plans (joins,
// nested aggregation) use the exec operators directly via Plan.
type Query struct {
	db      *DB
	qc      *exec.QCtx
	op      exec.Op
	meta    []exec.Meta
	keys    []string
	aggs    []exec.AggExpr
	orderBy []exec.SortKey
	limit   int
	err     error
}

// Scan selects the source table (and optionally a column subset).
func (q *Query) Scan(table string, columns ...string) *Query {
	s := exec.NewScan(q.db.cat.Table(table), columns...)
	q.op = s
	q.meta = s.Meta()
	return q
}

// Cond builds predicates against the current scan's columns.
type Cond func(m []exec.Meta) *exec.Expr

// Where adds a filter predicate.
func (q *Query) Where(pred Cond) *Query {
	q.op = exec.NewFilter(q.op, pred(q.meta))
	return q
}

// GroupBy sets the grouping columns.
func (q *Query) GroupBy(cols ...string) *Query {
	q.keys = cols
	return q
}

// AggSpec is one aggregate of a fluent query.
type AggSpec struct {
	fn   agg.Func
	col  string
	name string
}

// As renames the aggregate output column.
func (a AggSpec) As(name string) AggSpec { a.name = name; return a }

// Sum aggregates SUM(col).
func Sum(col string) AggSpec { return AggSpec{fn: agg.Sum, col: col, name: "sum_" + col} }

// Min aggregates MIN(col).
func Min(col string) AggSpec { return AggSpec{fn: agg.Min, col: col, name: "min_" + col} }

// Max aggregates MAX(col).
func Max(col string) AggSpec { return AggSpec{fn: agg.Max, col: col, name: "max_" + col} }

// Count aggregates COUNT(col), skipping NULLs.
func Count(col string) AggSpec { return AggSpec{fn: agg.Count, col: col, name: "count_" + col} }

// CountAll aggregates COUNT(*).
func CountAll() AggSpec { return AggSpec{fn: agg.CountStar, name: "count"} }

// Avg aggregates AVG(col).
func Avg(col string) AggSpec { return AggSpec{fn: exec.Avg, col: col, name: "avg_" + col} }

// Agg adds aggregates to the query.
func (q *Query) Agg(specs ...AggSpec) *Query {
	for _, s := range specs {
		ae := exec.AggExpr{Func: s.fn, Name: s.name}
		if s.col != "" {
			ae.Arg = exec.Col(q.meta, s.col)
		}
		q.aggs = append(q.aggs, ae)
	}
	return q
}

// OrderBy sorts the result by the given output column (descending when
// desc).
func (q *Query) OrderBy(col int, desc bool) *Query {
	q.orderBy = append(q.orderBy, exec.SortKey{Col: col, Desc: desc})
	return q
}

// Limit truncates the result.
func (q *Query) Limit(n int) *Query {
	q.limit = n
	return q
}

// Run executes the query and materializes the result.
func (q *Query) Run() *Result {
	root := q.op
	if len(q.keys) > 0 || len(q.aggs) > 0 {
		keyExprs := make([]*exec.Expr, len(q.keys))
		for i, k := range q.keys {
			keyExprs[i] = exec.Col(q.meta, k)
		}
		root = exec.NewHashAgg(root, q.keys, keyExprs, q.aggs)
	}
	res := exec.Run(q.qc, root)
	if len(q.orderBy) > 0 {
		res.OrderBy(q.orderBy...)
	}
	if q.limit > 0 {
		res.Limit(q.limit)
	}
	return res
}

// Plan runs an arbitrary operator tree built with the exec package under
// this query's context.
func (q *Query) Plan(root exec.Op) *Result { return exec.Run(q.qc, root) }

// Context exposes the underlying execution context (flags, string store,
// primitive-time stats, hash-table footprint accounting).
func (q *Query) Context() *exec.QCtx { return q.qc }

// HashTableBytes reports the summed footprint of the hash tables the last
// Run built.
func (q *Query) HashTableBytes() int { return q.qc.HashTableBytes() }

// HashTableHotBytes reports the hot working set of those hash tables —
// the part whose cache residency determines access latency. Optimistic
// Splitting shrinks this even when it grows the total footprint
// (Section III).
func (q *Query) HashTableHotBytes() int { return q.qc.HashTableHotBytes() }
