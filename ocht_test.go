package ocht_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ocht"
	"ocht/internal/exec"
)

func buildSales() *ocht.DB {
	db := ocht.NewDB()
	b := db.CreateTable("sales",
		ocht.ColStr("region"), ocht.ColInt64("amount"), ocht.ColStr("note").Null())
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < 10_000; i++ {
		if i%5 == 0 {
			b.Row(regions[i%4], int64(i%100), nil)
		} else {
			b.Row(regions[i%4], int64(i%100), fmt.Sprintf("n%d", i%3))
		}
	}
	b.Finish()
	return db
}

func TestFluentGroupBy(t *testing.T) {
	db := buildSales()
	for _, flags := range []ocht.Flags{ocht.Vanilla(), ocht.All()} {
		q := db.Query(flags).
			Scan("sales").
			GroupBy("region").
			Agg(ocht.Sum("amount"), ocht.CountAll(), ocht.Min("amount"),
				ocht.Max("amount"), ocht.Avg("amount")).
			OrderBy(0, false)
		res := q.Run()
		if len(res.Rows) != 4 {
			t.Fatalf("flags %+v: %d groups", flags, len(res.Rows))
		}
		var total int64
		for _, row := range res.Rows {
			total += row[2].I
		}
		if total != 10_000 {
			t.Fatalf("count total %d", total)
		}
	}
}

func TestFluentWhere(t *testing.T) {
	db := buildSales()
	res := db.Query(ocht.All()).
		Scan("sales").
		Where(func(m []exec.Meta) *exec.Expr {
			return exec.Gt(exec.Col(m, "amount"), exec.Int(50))
		}).
		GroupBy("region").
		Agg(ocht.CountAll()).
		Run()
	if len(res.Rows) != 4 {
		t.Fatalf("groups: %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// amounts 51..99 of every 100: 49% of rows per region.
		if row[1].I <= 0 || row[1].I >= 2500 {
			t.Errorf("filtered count %d implausible", row[1].I)
		}
	}
}

func TestNullableAggAndKeys(t *testing.T) {
	db := buildSales()
	res := db.Query(ocht.All()).
		Scan("sales").
		GroupBy("note").
		Agg(ocht.CountAll()).
		Run()
	// 3 note values + NULL group.
	if len(res.Rows) != 4 {
		t.Fatalf("groups: %d", len(res.Rows))
	}
	nulls := 0
	for _, row := range res.Rows {
		if row[0].Null {
			nulls++
			if row[1].I != 2000 {
				t.Errorf("NULL group count %d", row[1].I)
			}
		}
	}
	if nulls != 1 {
		t.Fatalf("NULL groups: %d", nulls)
	}
}

func TestHashTableBytesExposed(t *testing.T) {
	db := buildSales()
	q := db.Query(ocht.Vanilla()).Scan("sales").GroupBy("region").Agg(ocht.CountAll())
	q.Run()
	if q.HashTableBytes() <= 0 {
		t.Error("hash table footprint must be accounted")
	}
}

func TestPlanEscapeHatch(t *testing.T) {
	db := buildSales()
	q := db.Query(ocht.All())
	scan := exec.NewScan(db.Catalog().Table("sales"), "region", "amount")
	m := scan.Meta()
	res := q.Plan(exec.NewProject(scan, []string{"double"}, []*exec.Expr{
		exec.Mul(exec.Col(m, "amount"), exec.Int(2)),
	}))
	if len(res.Rows) != 10_000 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
}

func TestRowTypeMismatchPanics(t *testing.T) {
	db := ocht.NewDB()
	b := db.CreateTable("t", ocht.ColInt64("x"))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong arity")
		}
	}()
	b.Row(int64(1), "extra")
}

func ExampleDB() {
	db := ocht.NewDB()
	b := db.CreateTable("fruit", ocht.ColStr("name"), ocht.ColInt64("qty"))
	b.Row("apple", int64(3)).Row("pear", int64(5)).Row("apple", int64(4))
	b.Finish()
	res := db.Query(ocht.All()).
		Scan("fruit").
		GroupBy("name").
		Agg(ocht.Sum("qty")).
		OrderBy(0, false).
		Run()
	fmt.Print(res)
	// Output:
	// name | sum_qty
	// apple | 7
	// pear | 5
}

func TestCSVAndSQLIntegration(t *testing.T) {
	db := ocht.NewDB()
	csv := "city,pop\nparis,2100000\nlyon,520000\nnice,340000\n"
	if err := db.ImportCSV("cities", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	res, err := db.SQL(ocht.All(), "SELECT city FROM cities WHERE pop > 500000 ORDER BY city")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].S != "lyon" || res.Rows[1][0].S != "paris" {
		t.Fatalf("result:\n%s", res)
	}
	var out bytes.Buffer
	if err := db.ExportCSV(&out, "cities"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "paris,2100000") {
		t.Error("export content")
	}
}

func TestSaveOpen(t *testing.T) {
	dir := t.TempDir()
	db := buildSales()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := ocht.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := db.SQL(ocht.All(), "SELECT region, COUNT(*) FROM sales GROUP BY region ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db2.SQL(ocht.All(), "SELECT region, COUNT(*) FROM sales GROUP BY region ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("results differ after save/open")
	}
}
